//! The hot-cell result cache: a sharded, epoch-keyed read-through map
//! from **resolved trie cell** to its resolved polygon-ref set, sitting
//! in front of the worker batch walk (ROADMAP item 4 — production probe
//! traffic is heavily skewed; everyone is downtown).
//!
//! Refs cross this API **packed** as `(id << 1) | hit` — exactly
//! [`crate::protocol::encode_ref`]'s wire form. That is not an
//! implementation detail, it is the point: an approximate-mode hit goes
//! slot → batch arena → reply payload as three straight `u32` copies
//! with no per-ref decode anywhere, which is what lets a hit undercut a
//! walk whose per-ref resolution cost it would otherwise merely match.
//!
//! ## Keying: the resolved trie cell, not the query point
//!
//! Entries are keyed by [`act_core::probe_cell_key`] — the key prefix
//! the trie walk actually consumed plus the depth it terminated at. Two
//! nearby points whose leaf cells share that prefix share one entry, so
//! the cache's working set is "hot *cells*", not "hot points": a block
//! of downtown resolves to a handful of entries no matter how many
//! distinct devices probe from it. Because the walk is deterministic,
//! at most one `(prefix, depth)` pair exists per query; a lookup tries
//! its query's prefixes at each depth `1..=7` and can hit at most one.
//! Depth-0 probes (an empty root face) are never cached — the walk
//! answers those with a single root check, cheaper than any map.
//!
//! ## Invalidation: the epoch, structurally
//!
//! There is no invalidation scan and no TTL. Every entry carries the
//! [`crate::swap::IndexStore`] epoch it was filled under, and a worker
//! consults the cache only with the epoch of the `(snapshot, epoch)`
//! pair it pinned for the batch. A full hot-swap or a delta apply bumps
//! the epoch, so every existing entry silently stops matching — a stale
//! hit is *structurally* impossible, and entries refill lazily under
//! the new epoch, overwriting in place. Old-epoch corpses cost nothing
//! to skip (the epoch check is part of the slot compare) and are
//! reclaimed wholesale the next time their shard clears.
//!
//! ## Layout: a flat open-addressing table, probed like the trie
//!
//! Each shard is a power-of-two slot array probed linearly, not a
//! `HashMap`: the walk this cache fronts already hides DRAM latency by
//! issuing its per-lane loads independently across a 2048-lane batch
//! (memory-level parallelism), so to *beat* the walk a hit must be one
//! predictable load itself. A slot is 32 bytes — key, epoch, ref count,
//! and up to [`INLINE_REFS`] refs packed `(id << 1) | hit` — so the
//! common hit touches exactly one cache line and the batch loop's loads
//! are independent across lanes, overlappable the same way the walk's
//! are. Longer ref lists spill to a contiguous per-shard arena (an
//! offset, not a pointer — no per-entry allocation, no pointer chase
//! into random heap). Lists longer than 255 refs are not cached.
//!
//! Capacity is enforced by **wholesale clear**: when a shard's live
//! count reaches its cap (or its spill arena its bound), the shard
//! drops everything and refills lazily — the moral equivalent of an
//! epoch bump, which the design already absorbs. No per-insert
//! eviction, no reaping, no free lists.
//!
//! ## Concurrency
//!
//! The table is sharded by the key's top bits. All depth keys of one
//! query share those bits (the face and first consumed byte), so one
//! lookup takes exactly **one** shard read-lock however many depths it
//! tries — and the batch form reacquires only when the shard changes.
//! Hit/miss counters are relaxed atomics, merged into the wire counter
//! block (`cache_hits` / `cache_misses`) — callers tally per
//! micro-batch and publish once via [`HotCellCache::record`], keeping
//! atomic traffic off the per-lane path.
//!
//! ## The depth hint
//!
//! Real indexes resolve the bulk of their traffic at one or two trie
//! depths (the census index at 15 m terminates nearly every probe at
//! depth 5). A naive lookup would still probe depths `1..=7` in order —
//! five table probes before the one that hits. The cache keeps a
//! relaxed `AtomicU8` *hint*: the termination depth of the most recent
//! hit. Lookups try the hinted depth first and fall back to the
//! remaining depths, so the steady-state hit is a single table probe.
//! The hint is advisory only — a wrong hint reorders the scan, never
//! changes its result.

use act_core::probe_cell_key;
use s2cell::CellId;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{PoisonError, RwLock, RwLockReadGuard};

/// Hot-cell cache knobs. `Default` is 16 shards and 65 536 entries —
/// a few MB at typical ref-set sizes, far beyond any city's hot set.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Concurrency shards (rounded up to a power of two, minimum 1).
    pub shards: usize,
    /// Total entry capacity across shards. A shard that fills clears
    /// itself wholesale and refills lazily — under skewed traffic the
    /// hot set re-establishes within one batch, and under epoch churn
    /// most residents were dead already.
    pub capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            shards: 16,
            capacity: 65_536,
        }
    }
}

/// Ref lists at or under this length live inside the slot itself, so a
/// hit is exactly one cache-line fetch; longer lists cost one more read
/// from the shard's contiguous spill arena. Real *partition* indexes
/// resolve nearly every cell to 0–3 candidates; stacked-zone indexes
/// (many overlapping layers) overflow by design and take the spill
/// path.
const INLINE_REFS: usize = 3;

/// Longest cacheable ref list (`len` is a `u8`). Longer resolutions are
/// simply not cached — at that size the copy would rival the walk.
const MAX_CACHED_REFS: usize = u8::MAX as usize;

/// Lanes per speculative-load group in [`HotCellCache::get_batch`]:
/// two slot loads per lane, sized so a group's loads sit within what
/// the core can keep in flight at once.
const MLP_GROUP: usize = 8;

/// One open-addressing slot: 32 bytes, two per cache line. `key == 0`
/// means empty — [`probe_cell_key`] always carries a nonzero depth tag
/// in its low bits, so no live key is ever 0. Refs are packed
/// `(id << 1) | hit`, the wire encoding.
#[derive(Clone, Copy)]
struct Slot {
    key: u64,
    epoch: u32,
    /// Offset into the shard's spill arena; only read when
    /// `len > INLINE_REFS`.
    spill_at: u32,
    inline: [u32; INLINE_REFS],
    len: u8,
}

const EMPTY_SLOT: Slot = Slot {
    key: 0,
    epoch: 0,
    spill_at: 0,
    inline: [0; INLINE_REFS],
    len: 0,
};

/// One shard: the slot table plus its spill arena. Overwritten spilled
/// entries orphan their arena segment; the arena bound below turns that
/// slow leak into a wholesale clear, the same reclamation the slot cap
/// uses.
struct Table {
    slots: Box<[Slot]>,
    /// `slots.len() - 1` (power of two).
    slot_mask: usize,
    spill: Vec<u32>,
    /// Occupied (live + corpse) slot count.
    used: usize,
}

impl Table {
    fn new(cap: usize) -> Table {
        // ≤ 50% load before the clear triggers: linear probes stay
        // short and always terminate at an empty slot.
        let n = (cap * 2).next_power_of_two();
        Table {
            slots: vec![EMPTY_SLOT; n].into_boxed_slice(),
            slot_mask: n - 1,
            spill: Vec::new(),
            used: 0,
        }
    }

    /// Multiply-shift straight to a slot index: the keys are
    /// high-entropy in their top bits and the table is power-of-two
    /// sized, so one multiplication and a shift beat any general hasher
    /// on the path this cache exists to shorten.
    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.slot_mask
    }

    /// Linear-probes for `key`: `Ok(i)` at its slot, `Err(i)` at the
    /// first empty slot of its run (the insert position). Terminates
    /// because load never exceeds 50%.
    #[inline]
    fn probe(&self, key: u64) -> Result<usize, usize> {
        let mut i = self.slot_of(key);
        loop {
            let k = self.slots[i].key;
            if k == key {
                return Ok(i);
            }
            if k == 0 {
                return Err(i);
            }
            i = (i + 1) & self.slot_mask;
        }
    }

    /// Appends the slot's refs to `out` — a straight copy, because the
    /// stored form *is* the packed wire form.
    #[inline]
    fn read_refs(&self, slot: &Slot, out: &mut Vec<u32>) -> usize {
        let len = slot.len as usize;
        let packed: &[u32] = if len <= INLINE_REFS {
            &slot.inline[..len]
        } else {
            &self.spill[slot.spill_at as usize..slot.spill_at as usize + len]
        };
        out.extend_from_slice(packed);
        len
    }

    fn clear(&mut self) {
        self.slots.fill(EMPTY_SLOT);
        self.spill.clear();
        self.used = 0;
    }
}

/// The sharded cache itself. One per server, shared by every worker
/// through the server state's `Arc`; see the module docs.
pub struct HotCellCache {
    shards: Box<[RwLock<Table>]>,
    /// `shards.len() - 1` (power of two) — the shard selector mask.
    mask: usize,
    cap_per_shard: usize,
    /// Spill-arena words per shard before a clear (see module docs).
    spill_cap: usize,
    /// Termination depth of the most recent hit (see module docs).
    /// Advisory; relaxed loads/stores only.
    depth_hint: AtomicU8,
    /// The termination depth the hit *before* that used, when it
    /// differed — together with `depth_hint` a two-entry MRU of live
    /// depths. An index resolves nearly all traffic at one or two
    /// adjacent depths, so speculating on both covers the steady state
    /// even when the traffic alternates between them every few probes.
    depth_hint2: AtomicU8,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for HotCellCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HotCellCache")
            .field("shards", &self.shards.len())
            .field("cap_per_shard", &self.cap_per_shard)
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish()
    }
}

impl HotCellCache {
    /// An empty cache per `config`.
    pub fn new(config: &CacheConfig) -> HotCellCache {
        let n = config.shards.clamp(1, 1 << 16).next_power_of_two();
        let cap_per_shard = (config.capacity / n).max(1);
        HotCellCache {
            shards: (0..n)
                .map(|_| RwLock::new(Table::new(cap_per_shard)))
                .collect(),
            mask: n - 1,
            cap_per_shard,
            // Generous: roughly every resident spilling a 16-deep list
            // (a 16-layer zone stack) fits without churn.
            spill_cap: cap_per_shard * 16,
            depth_hint: AtomicU8::new(1),
            depth_hint2: AtomicU8::new(2),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Every depth key of one query shares its top 11 bits (face + the
    /// first consumed byte), so sharding on them pins a whole lookup to
    /// one shard — one lock acquisition per queried cell.
    #[inline]
    fn shard_index(&self, leaf: CellId) -> usize {
        let key1 = probe_cell_key(leaf, 1);
        ((key1 >> 53).wrapping_mul(0x9E37) as usize) & self.mask
    }

    /// One lookup against an already-locked shard; shared by the single
    /// and batch forms. On a hit, packed refs are appended to `out` and
    /// their count returned.
    #[inline]
    fn lookup(&self, table: &Table, leaf: CellId, epoch: u32, out: &mut Vec<u32>) -> Option<usize> {
        let hint = self.depth_hint.load(Ordering::Relaxed).clamp(1, 7);
        // Termination depths cluster (an index resolves most traffic at
        // one or two adjacent depths), so a wrong hint is almost always
        // off by one — scan outward from the hint by distance, not from
        // depth 1 up, and the off-by-one case costs two probes, not
        // five.
        let mut depths = [0u8; 7];
        let mut m = 0;
        depths[m] = hint;
        m += 1;
        for delta in 1..7u8 {
            if hint + delta <= 7 {
                depths[m] = hint + delta;
                m += 1;
            }
            if hint > delta {
                depths[m] = hint - delta;
                m += 1;
            }
        }
        for &depth in &depths[..m] {
            if let Ok(i) = table.probe(probe_cell_key(leaf, depth)) {
                let slot = &table.slots[i];
                // An entry filled under another epoch never matches
                // (that is the whole invalidation story) — and a dead
                // entry at one depth must not shadow a live one
                // elsewhere, so the scan skips corpses.
                if slot.epoch == epoch {
                    if depth != hint {
                        // Move-to-front of the two-depth MRU: the depth
                        // that just hit becomes the primary speculation,
                        // the old primary the secondary.
                        self.depth_hint2.store(hint, Ordering::Relaxed);
                        self.depth_hint.store(depth, Ordering::Relaxed);
                    }
                    return Some(table.read_refs(slot, out));
                }
            }
        }
        None
    }

    /// Looks `leaf` up at `epoch`: tries the resolved-cell key at the
    /// hinted depth, then the rest, until one matches. On a hit the
    /// entry's refs — packed wire words, see the module docs — are
    /// appended to `out` and their count returned; on a miss `out` is
    /// untouched.
    ///
    /// Does **not** touch the hit/miss counters — batch callers tally
    /// locally and publish once via [`HotCellCache::record`].
    pub fn get_into(&self, leaf: CellId, epoch: u32, out: &mut Vec<u32>) -> Option<usize> {
        let table = self.shards[self.shard_index(leaf)]
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        self.lookup(&table, leaf, epoch, out)
    }

    /// The batch form of [`HotCellCache::get_into`]: one lookup per
    /// cell of `leaves`, appending each hit's packed refs to `arena`
    /// and its `(start, len + 1)` span to `spans` — misses push
    /// `(0, 0)`.
    /// Returns the hit count (the caller records it with the batch's
    /// miss count once the misses are filled).
    ///
    /// The point of the batch form is what it keeps *off* the per-lane
    /// path — the same memory-level-parallelism discipline as the trie
    /// walk it competes with, which batches its node loads across lanes
    /// so DRAM latency overlaps instead of serializing:
    ///
    /// - the shard lock is reacquired only when the shard changes
    ///   (consecutive cells of real traffic land in the same shard
    ///   nearly always — the selector bits are a geographic prefix);
    /// - lanes are processed in groups of [`MLP_GROUP`]: each group
    ///   first computes every lane's home slot at the two MRU depths
    ///   (pure arithmetic), then copies all those slots out in one
    ///   dependency-free loop — the table is bigger than L2, so these
    ///   are the DRAM misses, and issuing them back to back lets the
    ///   core keep a group's worth in flight at once;
    /// - only lanes the speculation misses (displaced key, third depth,
    ///   corpse, genuine miss) fall back to the serial
    ///   [`HotCellCache::lookup`] chain.
    pub fn get_batch(
        &self,
        leaves: &[CellId],
        epoch: u32,
        arena: &mut Vec<u32>,
        spans: &mut Vec<(usize, usize)>,
    ) -> u64 {
        const G: usize = MLP_GROUP;
        let mut hits = 0u64;
        let mut held: Option<(usize, RwLockReadGuard<'_, Table>)> = None;
        let mut i = 0usize;
        while i < leaves.len() {
            let idx = self.shard_index(leaves[i]);
            if !matches!(&held, Some((s, _)) if *s == idx) {
                let guard = self.shards[idx]
                    .read()
                    .unwrap_or_else(PoisonError::into_inner);
                held = Some((idx, guard));
            }
            let mut end = i + 1;
            while end < leaves.len() && self.shard_index(leaves[end]) == idx {
                end += 1;
            }
            let table = &held.as_ref().expect("guard just set").1;
            let h1 = self.depth_hint.load(Ordering::Relaxed).clamp(1, 7);
            let mut h2 = self.depth_hint2.load(Ordering::Relaxed).clamp(1, 7);
            if h2 == h1 {
                h2 = if h1 < 7 { h1 + 1 } else { h1 - 1 };
            }
            for group in leaves[i..end].chunks(G) {
                let mut k1 = [0u64; G];
                let mut k2 = [0u64; G];
                let mut v1 = [EMPTY_SLOT; G];
                let mut v2 = [EMPTY_SLOT; G];
                for (j, &leaf) in group.iter().enumerate() {
                    k1[j] = probe_cell_key(leaf, h1);
                    k2[j] = probe_cell_key(leaf, h2);
                }
                // The speculative loads, kept free of branches on their
                // results so nothing stalls the next lane's issue.
                for j in 0..group.len() {
                    v1[j] = table.slots[table.slot_of(k1[j])];
                    v2[j] = table.slots[table.slot_of(k2[j])];
                }
                for (j, &leaf) in group.iter().enumerate() {
                    let start = arena.len();
                    let got = if v1[j].key == k1[j] && v1[j].epoch == epoch {
                        Some(table.read_refs(&v1[j], arena))
                    } else if v2[j].key == k2[j] && v2[j].epoch == epoch {
                        Some(table.read_refs(&v2[j], arena))
                    } else {
                        self.lookup(table, leaf, epoch, arena)
                    };
                    match got {
                        Some(n) => {
                            spans.push((start, n + 1));
                            hits += 1;
                        }
                        None => spans.push((0, 0)),
                    }
                }
            }
            i = end;
        }
        hits
    }

    /// Publishes a batch's tally to the hit/miss counters.
    pub fn record(&self, hits: u64, misses: u64) {
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }
        if misses > 0 {
            self.misses.fetch_add(misses, Ordering::Relaxed);
        }
    }

    /// Fills (or refreshes) the resolved cell of `leaf` at the walk's
    /// termination `depth` with the ref set it resolved to under
    /// `epoch` — `refs` already packed as wire words (see the module
    /// docs). Depth-0 probes are not cached (see module docs); neither
    /// are lists longer than [`MAX_CACHED_REFS`]. No allocation on any
    /// fill — short lists pack into the slot, long ones append to the
    /// shard's spill arena.
    pub fn insert(&self, leaf: CellId, depth: u8, epoch: u32, refs: &[u32]) {
        if depth == 0 || refs.len() > MAX_CACHED_REFS {
            return;
        }
        let key = probe_cell_key(leaf, depth.min(7));
        let mut table = self.shards[self.shard_index(leaf)]
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let mut pos = table.probe(key);
        let needs_spill = refs.len() > INLINE_REFS;
        if needs_spill {
            if let Ok(i) = pos {
                // Refreshing a resident spilled entry (an epoch flip
                // refilling the same hot cells, or a redundant re-fill)
                // reuses its segment in place when it fits. Without
                // this, every refresh would append a fresh segment and
                // orphan the old one — steady-state traffic would churn
                // the arena to its bound and clear the shard over and
                // over, wiping the very hot set the cache holds.
                let old = table.slots[i];
                if old.len as usize > INLINE_REFS && old.len as usize >= refs.len() {
                    let at = old.spill_at as usize;
                    table.spill[at..at + refs.len()].copy_from_slice(refs);
                    table.slots[i] = Slot {
                        key,
                        epoch,
                        spill_at: old.spill_at,
                        inline: [0; INLINE_REFS],
                        len: refs.len() as u8,
                    };
                    return;
                }
            }
        }
        if (pos.is_err() && table.used >= self.cap_per_shard)
            || (needs_spill && table.spill.len() + refs.len() > self.spill_cap)
        {
            // Wholesale reclamation — of this entry's own slot budget
            // *and* every orphaned spill segment and old-epoch corpse
            // in the shard. The hot set refills within a batch.
            table.clear();
            pos = table.probe(key);
        }
        let i = match pos {
            Ok(i) => i,
            Err(i) => {
                table.used += 1;
                i
            }
        };
        let mut slot = Slot {
            key,
            epoch,
            spill_at: 0,
            inline: [0; INLINE_REFS],
            len: refs.len() as u8,
        };
        if needs_spill {
            slot.spill_at = table.spill.len() as u32;
            table.spill.extend_from_slice(refs);
        } else {
            slot.inline[..refs.len()].copy_from_slice(refs);
        }
        table.slots[i] = slot;
    }

    /// Hits so far (relaxed).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses so far (relaxed).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Occupied slots across shards, live and corpse alike (tests and
    /// debugging; takes every shard's read lock).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(PoisonError::into_inner).used)
            .sum()
    }

    /// True when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Packed hit refs, as the worker fill path would produce them.
    fn refs(ids: &[u32]) -> Vec<u32> {
        ids.iter()
            .map(|&id| crate::protocol::encode_ref(id, true))
            .collect()
    }

    /// The worker path in miniature: one lookup, tallied immediately.
    fn get(cache: &HotCellCache, leaf: CellId, epoch: u32) -> Option<Vec<u32>> {
        let mut out = Vec::new();
        let hit = cache.get_into(leaf, epoch, &mut out);
        cache.record(hit.is_some() as u64, hit.is_none() as u64);
        hit.map(|_| out)
    }

    #[test]
    fn read_through_hits_only_at_the_filled_epoch() {
        let cache = HotCellCache::new(&CacheConfig::default());
        let leaf = CellId(0x4567_89AB_CDEF_0123);
        assert!(get(&cache, leaf, 1).is_none(), "cold");
        cache.insert(leaf, 5, 1, &refs(&[7, 9]));
        let hit = get(&cache, leaf, 1).expect("warm at epoch 1");
        assert_eq!(hit, refs(&[7, 9]));
        // A swap bumps the epoch: the same entry silently stops
        // matching — no scan ran.
        assert!(get(&cache, leaf, 2).is_none(), "stale epoch never hits");
        cache.insert(leaf, 5, 2, &refs(&[8]));
        assert_eq!(get(&cache, leaf, 2).expect("refilled"), refs(&[8]));
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn resolved_cell_is_shared_below_the_termination_depth() {
        let cache = HotCellCache::new(&CacheConfig::default());
        let leaf = CellId(0x4567_89AB_CDEF_0123);
        // Filled at depth 3: only the face + 3 bytes matter.
        cache.insert(leaf, 3, 1, &refs(&[1]));
        let sibling = CellId(leaf.0 ^ 0xFF); // same depth-3 prefix
        assert!(get(&cache, sibling, 1).is_some(), "prefix sibling hits");
        let other = CellId(leaf.0 ^ (0xFFu64 << 40)); // differs inside it
        assert!(get(&cache, other, 1).is_none());
    }

    #[test]
    fn depth_hint_reorders_but_never_changes_the_answer() {
        let cache = HotCellCache::new(&CacheConfig::default());
        // Two leaves resolving at different depths: every lookup of one
        // leaves the hint "wrong" for the other, so each exercises the
        // fallback scan — and still finds its entry.
        let shallow = CellId(0x4567_89AB_CDEF_0123);
        let deep = CellId(0x89AB_CDEF_0123_4567);
        cache.insert(shallow, 2, 1, &refs(&[1]));
        cache.insert(deep, 6, 1, &refs(&[2]));
        for _ in 0..4 {
            assert_eq!(get(&cache, shallow, 1).expect("shallow"), refs(&[1]));
            assert_eq!(get(&cache, deep, 1).expect("deep"), refs(&[2]));
        }
        assert_eq!(cache.hits(), 8);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn depth_zero_probes_are_never_cached() {
        let cache = HotCellCache::new(&CacheConfig::default());
        let leaf = CellId(0x4567_89AB_CDEF_0123);
        cache.insert(leaf, 0, 1, &refs(&[]));
        assert!(cache.is_empty());
    }

    #[test]
    fn long_ref_lists_spill_and_round_trip() {
        let cache = HotCellCache::new(&CacheConfig::default());
        let leaf = CellId(0x4567_89AB_CDEF_0123);
        // One past the inline bound, and a long stacked-zone list.
        let wide: Vec<u32> = (0..INLINE_REFS as u32 + 1)
            .map(|k| crate::protocol::encode_ref(k, k % 2 == 0))
            .collect();
        let deep: Vec<u32> = (0..64u32)
            .map(|k| crate::protocol::encode_ref(1000 + k, true))
            .collect();
        cache.insert(leaf, 5, 1, &wide);
        assert_eq!(get(&cache, leaf, 1).expect("spilled"), wide);
        cache.insert(leaf, 5, 1, &deep);
        assert_eq!(get(&cache, leaf, 1).expect("respilled"), deep);
        // Over the length cap: silently uncacheable, entry unchanged.
        let over = refs(&(0..MAX_CACHED_REFS as u32 + 1).collect::<Vec<_>>());
        cache.insert(CellId(0x1123_4567_89AB_CDEF), 5, 1, &over);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_is_bounded_by_wholesale_clear() {
        let cache = HotCellCache::new(&CacheConfig {
            shards: 1,
            capacity: 8,
        });
        for k in 0..64u64 {
            // Distinct depth-7 prefixes (bits well above the depth tag).
            cache.insert(CellId(k << 8), 7, 1, &refs(&[k as u32]));
        }
        assert!(
            cache.len() <= 8,
            "inserts clear at cap, never grow past it (len {})",
            cache.len()
        );
        assert!(!cache.is_empty(), "the clear refills with the inserted key");
    }
}
