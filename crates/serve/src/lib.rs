//! # act-serve — the ACT as an online geofencing service
//!
//! The paper's pitch is that an Adaptive Cell Trie makes point-in-polygon
//! joins cheap enough to answer **online**. This crate is that last
//! mile: a TCP server (std::net only — no async runtime, no new deps)
//! that answers batched coordinate→polygon-id probes out of a
//! memory-mapped index snapshot, with two production-shaped properties
//! layered on top:
//!
//! * **Adaptive micro-batching** — connection readers enqueue decoded
//!   requests on a shared queue; probe workers drain it until empty (up
//!   to a 256-lane budget) and answer each micro-batch with one
//!   level-synchronous [`lookup_batch`](act_core::Act::lookup_batch)
//!   walk. Light load degenerates to per-request dispatch; heavy load
//!   widens batches automatically.
//! * **Epoch hot-swap** — the serving snapshot lives behind an
//!   epoch-counted [`IndexStore`]; a watcher polls the snapshot path and
//!   swaps validated replacements in. In-flight batches finish on the
//!   old index (their `Arc` pins the old mapping), new batches see the
//!   new one, and responses echo the answering epoch so clients can
//!   observe the cutover. Restarts — and now live reloads — ship
//!   snapshots, not polygon sets. Small edits ship as `ACTDLT01`
//!   **delta files** beside the base snapshot: the watcher validates
//!   each against the lineage cursor, applies it to the live index in
//!   milliseconds (no base remap), and periodically folds the chain
//!   into a fresh base (see [`swap`]).
//! * **Admission control & graceful drain** — the probe queue is
//!   bounded in lanes; overflow is answered immediately with `LOADSHED`
//!   (never dropped, never queued). Per-connection in-flight caps turn a
//!   slow reader's backlog into TCP backpressure on that client alone, a
//!   connection cap answers `BUSY` at the accept gate, and
//!   [`ServerHandle::shutdown`] drains: stop accepting, answer every
//!   accepted frame, flush, join. Counters for all of it ride the PING
//!   reply and the STATS frame ([`protocol::CounterBlock`]).
//! * **Horizontal scale-out** — [`act_core::write_shard_files`] splits
//!   one snapshot into N per-shard snapshots, N workers each serve one,
//!   and a scatter-gather [`Router`] speaks the same frame protocol in
//!   front of them: probe batches partition by shard, fan out over
//!   pooled [`ResilientClient`]s, and stitch back in request order with
//!   merged counters and drain/fault-aware per-shard circuit breaking
//!   (see [`router`]).
//!
//! See [`protocol`] for the frame layout, [`server`] for the threading
//! model and overload semantics, and the repo README's "Serving" section
//! for the operator story (`loadgen`, atomic snapshot replacement,
//! exact-mode contract, overload behavior & shutdown).
//!
//! ```no_run
//! use act_serve::{Client, ServeConfig, Server};
//! use geom::Coord;
//!
//! let server = Server::spawn("target/zones.snap", ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let reply = client.probe(&[Coord::new(-73.9855, 40.7580)], false).unwrap();
//! println!("epoch {}: {:?}", reply.epoch, reply.refs[0]);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
#[cfg(feature = "fault-injection")]
pub mod faults;
pub mod obs;
pub mod protocol;
pub mod router;
pub mod server;
pub mod swap;

pub use cache::{CacheConfig, HotCellCache};
pub use client::{Client, ClientError, ResilientClient, RetryPolicy};
pub use obs::{ObsConfig, PipelineObs};
pub use protocol::{CounterBlock, PingReply, ProbeReply, StatsExReply, StatsReply};
pub use router::{Router, RouterConfig, RouterHandle};
pub use server::{ServeConfig, ServeError, ServeStats, Server, ServerHandle};
pub use swap::{delta_path, IndexStore, ServeIndex, WatchCounters, FOLD_AFTER_DELTAS};

#[cfg(test)]
mod tests {
    use super::*;
    use geom::{Coord, Polygon, Ring};

    fn square(cx: f64, cy: f64, half: f64) -> Polygon {
        Polygon::new(
            Ring::new(vec![
                Coord::new(cx - half, cy - half),
                Coord::new(cx + half, cy - half),
                Coord::new(cx + half, cy + half),
                Coord::new(cx - half, cy + half),
            ]),
            vec![],
        )
    }

    fn snap_file(name: &str, polys: &[Polygon]) -> (std::path::PathBuf, act_core::ActIndex) {
        let idx = act_core::ActIndex::build(polys, 15.0).unwrap();
        let mut bytes = Vec::new();
        idx.save_snapshot(&mut bytes).unwrap();
        let mut p = std::env::temp_dir();
        p.push(format!("act-serve-test-{}-{name}.snap", std::process::id()));
        std::fs::write(&p, bytes).unwrap();
        (p, idx)
    }

    #[test]
    fn probe_ping_and_shutdown() {
        let polys = vec![square(-74.05, 40.70, 0.02), square(-73.95, 40.70, 0.02)];
        let (path, idx) = snap_file("roundtrip", &polys);
        let server = Server::spawn(
            &path,
            ServeConfig {
                watch: None,
                ..ServeConfig::default()
            },
        )
        .unwrap();

        let mut client = Client::connect(server.addr()).unwrap();
        let coords: Vec<Coord> = (0..500)
            .map(|k| Coord::new(-74.1 + 0.0004 * k as f64, 40.70))
            .collect();
        let reply = client.probe(&coords, false).unwrap();
        assert_eq!(reply.epoch, 1);
        assert_eq!(reply.refs.len(), coords.len());
        for (c, got) in coords.iter().zip(&reply.refs) {
            assert_eq!(*got, idx.lookup_refs(*c), "at {c}");
        }

        let ping = client.ping().unwrap();
        assert_eq!(ping.epoch, 1);
        assert_eq!(ping.probes_served, coords.len() as u64);
        // The PING payload carries the full counter block.
        assert_eq!(ping.counters.probes, coords.len() as u64);
        assert_eq!(ping.counters.shed, 0);
        assert_eq!(ping.counters.swaps, 0);
        assert!(ping.counters.queue_high_water_lanes <= coords.len() as u64);

        // STATS mirrors PING (plus the frames exchanged meanwhile).
        let stats_reply = client.stats().unwrap();
        assert_eq!(stats_reply.epoch, 1);
        assert_eq!(stats_reply.counters.probes, coords.len() as u64);
        assert_eq!(stats_reply.counters.accepted, 3);

        let stats = server.stats();
        assert_eq!(stats.probes, coords.len() as u64);
        assert_eq!(stats.requests, 3);
        assert!(stats.batches >= 1);
        assert_eq!(stats.accepted, stats.answered + stats.shed);
        server.shutdown();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn full_queue_sheds_with_loadshed_and_connection_survives() {
        let (path, _idx) = snap_file("shed", &[square(-74.0, 40.7, 0.02)]);
        // Depth 0: every non-empty probe frame overflows the queue —
        // the degenerate config that makes shedding deterministic.
        let server = Server::spawn(
            &path,
            ServeConfig {
                queue_depth_lanes: 0,
                watch: None,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let pts = [Coord::new(-74.0, 40.7)];
        for _ in 0..3 {
            match client.probe(&pts, false) {
                Err(ClientError::Server {
                    status,
                    retry_after_ms,
                }) => {
                    assert_eq!(status, protocol::STATUS_LOADSHED);
                    // v2: a shed reply tells the client when to come back.
                    let hint = retry_after_ms.expect("LOADSHED must carry a retry hint");
                    assert!(
                        (protocol::RETRY_AFTER_MIN_MS..=protocol::RETRY_AFTER_MAX_MS)
                            .contains(&hint)
                    );
                }
                other => panic!("expected LOADSHED, got {other:?}"),
            }
        }
        // The connection stays open and PING still answers.
        let ping = client.ping().unwrap();
        assert_eq!(ping.counters.shed, 3);
        assert_eq!(
            ping.counters.accepted,
            ping.counters.answered + ping.counters.shed
        );
        let stats = server.stats();
        assert_eq!(stats.shed, 3);
        assert_eq!(stats.queue_high_water_lanes, 0);
        server.shutdown();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn connection_cap_answers_busy_and_frees_on_close() {
        use std::io::Read;
        let (path, _idx) = snap_file("busy", &[square(-74.0, 40.7, 0.02)]);
        let server = Server::spawn(
            &path,
            ServeConfig {
                max_connections: 1,
                watch: None,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut first = Client::connect(server.addr()).unwrap();
        // Force the first connection through the accept loop before the
        // second one races it for the single slot.
        first.ping().unwrap();

        let mut second = std::net::TcpStream::connect(server.addr()).unwrap();
        second
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let body = protocol::read_frame(&mut second, 1 << 20).unwrap().unwrap();
        let (h, _) = protocol::decode_response(&body).unwrap();
        assert_eq!(h.status, protocol::STATUS_BUSY);
        assert_eq!(h.op, 0, "BUSY has no request to echo");
        // …and the connection is closed right after the BUSY frame.
        let mut rest = Vec::new();
        assert_eq!(second.read_to_end(&mut rest).unwrap(), 0);
        assert!(server.stats().busy >= 1);

        // The typed Client surfaces BUSY as a server status (op 0 must
        // not trip the op-echo check).
        let mut third = Client::connect(server.addr()).unwrap();
        match third.ping() {
            Err(ClientError::Server {
                status,
                retry_after_ms,
            }) => {
                assert_eq!(status, protocol::STATUS_BUSY);
                assert!(
                    retry_after_ms.is_some(),
                    "BUSY must carry a retry hint under protocol v2"
                );
            }
            other => panic!("expected BUSY through the Client, got {other:?}"),
        }

        // Closing the served connection frees the slot.
        drop(first);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut again = loop {
            let mut c = Client::connect(server.addr()).unwrap();
            match c.ping() {
                Ok(_) => break c,
                Err(_) => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "slot was never released"
                    );
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            }
        };
        assert_eq!(
            again
                .probe(&[Coord::new(-74.0, 40.7)], false)
                .unwrap()
                .refs
                .len(),
            1
        );
        server.shutdown();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn exact_mode_refines_and_needs_a_refiner() {
        let polys = vec![square(-74.0, 40.7, 0.02)];
        let (path, idx) = snap_file("exact", &polys);
        // Without a refiner: EXACT is a typed server status.
        let server = Server::spawn(
            &path,
            ServeConfig {
                watch: None,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let pts = [Coord::new(-74.0, 40.7)];
        match client.probe(&pts, true) {
            Err(ClientError::Server { status, .. }) => {
                assert_eq!(status, protocol::STATUS_UNSUPPORTED)
            }
            other => panic!("expected UNSUPPORTED, got {other:?}"),
        }
        // The connection stays usable afterwards.
        assert_eq!(client.probe(&pts, false).unwrap().refs.len(), 1);
        server.shutdown();

        // With a refiner: exact answers equal join_exact's memberships.
        let refiner = act_core::Refiner::new(&polys);
        let server = Server::spawn(
            &path,
            ServeConfig {
                refiner: Some(act_core::Refiner::new(&polys)),
                watch: None,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        // Points straddling the boundary: some inside, some within ε
        // outside (candidates that exact mode must reject).
        let coords: Vec<Coord> = (0..200)
            .map(|k| Coord::new(-74.02 + 0.0002 * k as f64, 40.7))
            .collect();
        let reply = client.probe(&coords, true).unwrap();
        for (c, got) in coords.iter().zip(&reply.refs) {
            let want: Vec<(u32, bool)> = idx
                .lookup_refs(*c)
                .into_iter()
                .filter(|&(id, interior)| interior || refiner.contains(id, *c))
                .map(|(id, _)| (id, true))
                .collect();
            assert_eq!(*got, want, "at {c}");
        }
        server.shutdown();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_frame_gets_bad_request_then_close() {
        use std::io::{Read, Write};
        let (path, _idx) = snap_file("badframe", &[square(-74.0, 40.7, 0.02)]);
        let server = Server::spawn(
            &path,
            ServeConfig {
                watch: None,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        // A header-only body with an unknown op.
        let mut frame = Vec::new();
        frame.extend_from_slice(&8u32.to_le_bytes());
        frame.extend_from_slice(&[99, 0, 0, 0, 0, 0, 0, 0]);
        stream.write_all(&frame).unwrap();
        let body = protocol::read_frame(&mut stream, 1 << 20).unwrap().unwrap();
        let (h, _) = protocol::decode_response(&body).unwrap();
        assert_eq!(h.status, protocol::STATUS_BAD_REQUEST);
        // The server closes after a bad frame.
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
        server.shutdown();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_connections_share_micro_batches() {
        let polys = vec![square(-74.05, 40.70, 0.02), square(-73.95, 40.70, 0.02)];
        let (path, idx) = snap_file("concurrent", &polys);
        let server = Server::spawn(
            &path,
            ServeConfig {
                workers: 2,
                watch: None,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        let idx = std::sync::Arc::new(idx);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let idx = std::sync::Arc::clone(&idx);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    for round in 0..20 {
                        let coords: Vec<Coord> = (0..37)
                            .map(|k| {
                                Coord::new(-74.1 + 0.0007 * (k + t * 37 + round) as f64, 40.70)
                            })
                            .collect();
                        let reply = client.probe(&coords, false).unwrap();
                        for (c, got) in coords.iter().zip(&reply.refs) {
                            assert_eq!(*got, idx.lookup_refs(*c), "at {c}");
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = server.stats();
        assert_eq!(stats.probes, 4 * 20 * 37);
        server.shutdown();
        std::fs::remove_file(&path).unwrap();
    }
}
