//! Deterministic fault injection for chaos tests.
//!
//! A [`FaultPlan`] is a seeded, fully deterministic schedule of failures
//! at named [`Site`]s inside the serving stack: worker panics mid-batch,
//! connection write errors and stalls, IO errors while the watcher stats
//! or opens snapshot and delta files, and (through `mmapio`'s own hook)
//! failed mmap attempts. The plan is armed once ([`FaultPlan::arm`]) and
//! the resulting [`Faults`] handle is threaded through `ServeConfig` and
//! the watcher; each hook site calls [`Faults::check`] and acts on the
//! returned [`FaultAction`].
//!
//! Determinism: a spec fires on the `first + k·every`-th *hit* of its
//! site (per-site atomic hit counters), for `k < count` — no clocks, no
//! RNG draws at decision time, so the same plan against the same traffic
//! produces the same faults. The plan seed only perturbs stall
//! durations, keeping distinct seeds distinguishable without affecting
//! *which* operations fail.
//!
//! Everything here is compiled under the `fault-injection` feature; when
//! the feature is off this module is not built and the hook sites in
//! `server.rs`/`swap.rs` compile to nothing.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Named injection sites. Each is a specific line in the serving stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// The watcher (re)opening a base snapshot: injected IO error, as a
    /// short/failed read would surface.
    SnapshotOpen,
    /// The watcher opening/applying a delta file: injected **transient**
    /// IO error (distinct from corruption, which the validation layer
    /// catches and quarantines).
    DeltaOpen,
    /// The watcher statting a path for its change signature: injected
    /// IO error (feeds the `watch_errors` counter and the backoff path).
    WatchStat,
    /// A worker thread at the top of a drained micro-batch: panic
    /// (contained by `catch_unwind`; the batch answers `INTERNAL`).
    WorkerPanic,
    /// A connection writer about to send a reply frame: injected write
    /// error — the connection dies as if the peer reset it.
    ConnWrite,
    /// A connection writer about to send a reply frame: stall for the
    /// plan's configured duration before writing (slow-network stand-in).
    ConnStall,
    /// `mmapio::Mmap::map_file`: the next map attempt fails (armed via
    /// mmapio's process-global hook when the plan is armed).
    MmapOpen,
}

/// All sites, for iteration in reports.
pub const ALL_SITES: [Site; 7] = [
    Site::SnapshotOpen,
    Site::DeltaOpen,
    Site::WatchStat,
    Site::WorkerPanic,
    Site::ConnWrite,
    Site::ConnStall,
    Site::MmapOpen,
];

fn site_index(site: Site) -> usize {
    match site {
        Site::SnapshotOpen => 0,
        Site::DeltaOpen => 1,
        Site::WatchStat => 2,
        Site::WorkerPanic => 3,
        Site::ConnWrite => 4,
        Site::ConnStall => 5,
        Site::MmapOpen => 6,
    }
}

/// What a hook site should do when its spec fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a recognizable message (worker sites).
    Panic,
    /// Fail the operation with an injected `io::Error`.
    Error,
    /// Sleep this long, then proceed normally.
    Stall(Duration),
}

/// One deterministic failure schedule at one site: fires on the
/// `first + k·every`-th hit for `k < count` (1-based hit numbering, so
/// `first: 1` fires on the very first hit).
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    /// Where to inject.
    pub site: Site,
    /// 1-based hit number of the first firing.
    pub first: u64,
    /// Hits between firings (0 is treated as "only `first` fires once").
    pub every: u64,
    /// Total firings before the spec goes quiet.
    pub count: u64,
}

impl FaultSpec {
    fn fires_on(&self, hit: u64) -> bool {
        if self.count == 0 || hit < self.first {
            return false;
        }
        let since = hit - self.first;
        if self.every == 0 {
            return since == 0;
        }
        since.is_multiple_of(self.every) && since / self.every < self.count
    }
}

/// A seeded, buildable fault schedule. Arm it to get the shared
/// [`Faults`] handle the serving stack consumes.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    stall: Duration,
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            stall: Duration::from_millis(50),
            specs: Vec::new(),
        }
    }

    /// Adds a spec (builder style).
    pub fn with(mut self, spec: FaultSpec) -> FaultPlan {
        self.specs.push(spec);
        self
    }

    /// Sets the base stall duration for [`Site::ConnStall`] firings
    /// (each firing is additionally jittered ±25% from the seed).
    pub fn stall(mut self, d: Duration) -> FaultPlan {
        self.stall = d;
        self
    }

    /// Freezes the plan into the shared handle hooks consult. Also arms
    /// mmapio's process-global hook with the total `MmapOpen` budget.
    pub fn arm(self) -> Arc<Faults> {
        let mmap_budget: u64 = self
            .specs
            .iter()
            .filter(|s| s.site == Site::MmapOpen)
            .map(|s| s.count)
            .sum();
        mmapio::faults::reset();
        if mmap_budget > 0 {
            mmapio::faults::fail_next_maps(mmap_budget);
        }
        Arc::new(Faults {
            plan: self,
            hits: Default::default(),
            fired: Default::default(),
        })
    }
}

/// An armed plan: per-site hit and fire counters plus the schedule.
/// Cheap to share (`Arc`), safe to consult from any thread.
#[derive(Debug)]
pub struct Faults {
    plan: FaultPlan,
    hits: [AtomicU64; 7],
    fired: [AtomicU64; 7],
}

impl Faults {
    /// Called by a hook site on every pass: counts the hit and returns
    /// the action to take if a spec fires on it.
    pub fn check(&self, site: Site) -> Option<FaultAction> {
        let idx = site_index(site);
        let hit = self.hits[idx].fetch_add(1, Ordering::SeqCst) + 1;
        let fires = self
            .plan
            .specs
            .iter()
            .any(|s| s.site == site && s.fires_on(hit));
        if !fires {
            return None;
        }
        self.fired[idx].fetch_add(1, Ordering::SeqCst);
        Some(match site {
            Site::WorkerPanic => FaultAction::Panic,
            Site::ConnStall => FaultAction::Stall(self.jittered_stall(hit)),
            _ => FaultAction::Error,
        })
    }

    /// The injected `io::Error` hooks use for [`FaultAction::Error`].
    pub fn injected_error(&self, site: Site) -> io::Error {
        let what = match site {
            Site::SnapshotOpen => "injected snapshot read failure",
            Site::DeltaOpen => "injected delta read failure",
            Site::WatchStat => "injected stat failure",
            Site::ConnWrite => "injected socket reset",
            _ => "injected fault",
        };
        io::Error::other(what)
    }

    /// How many times `site` has fired so far (mmap fires live in
    /// mmapio's hook and are reported there).
    pub fn fires(&self, site: Site) -> u64 {
        if site == Site::MmapOpen {
            return mmapio::faults::fires();
        }
        self.fired[site_index(site)].load(Ordering::SeqCst)
    }

    /// Total fires across every site (including mmap).
    pub fn total_fires(&self) -> u64 {
        ALL_SITES.iter().map(|&s| self.fires(s)).sum()
    }

    /// ±25% deterministic jitter around the plan's stall, keyed by the
    /// seed and the hit number (splitmix64, the workspace's test RNG).
    fn jittered_stall(&self, hit: u64) -> Duration {
        let base = self.plan.stall.as_micros() as u64;
        let r = splitmix64(self.plan.seed ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let quarter = base / 4;
        let jitter = if quarter == 0 {
            0
        } else {
            r % (2 * quarter + 1)
        };
        Duration::from_micros(base - quarter + jitter)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_fire_deterministically_on_schedule() {
        let faults = FaultPlan::new(7)
            .with(FaultSpec {
                site: Site::WorkerPanic,
                first: 2,
                every: 3,
                count: 2,
            })
            .arm();
        let mut fired_on = Vec::new();
        for hit in 1..=12u64 {
            if faults.check(Site::WorkerPanic).is_some() {
                fired_on.push(hit);
            }
        }
        // first=2, every=3, count=2 → hits 2 and 5, then quiet.
        assert_eq!(fired_on, vec![2, 5]);
        assert_eq!(faults.fires(Site::WorkerPanic), 2);
        // Other sites are untouched.
        assert_eq!(faults.fires(Site::ConnWrite), 0);
    }

    #[test]
    fn actions_match_sites() {
        let all = FaultPlan::new(1)
            .stall(Duration::from_millis(8))
            .with(FaultSpec {
                site: Site::WorkerPanic,
                first: 1,
                every: 0,
                count: 1,
            })
            .with(FaultSpec {
                site: Site::ConnStall,
                first: 1,
                every: 0,
                count: 1,
            })
            .with(FaultSpec {
                site: Site::ConnWrite,
                first: 1,
                every: 0,
                count: 1,
            })
            .arm();
        assert_eq!(all.check(Site::WorkerPanic), Some(FaultAction::Panic));
        match all.check(Site::ConnStall) {
            Some(FaultAction::Stall(d)) => {
                // ±25% of 8 ms.
                assert!(d >= Duration::from_millis(6) && d <= Duration::from_millis(10));
            }
            other => panic!("expected a stall, got {other:?}"),
        }
        assert_eq!(all.check(Site::ConnWrite), Some(FaultAction::Error));
        // every=0 means one-shot: the next hits are quiet.
        assert_eq!(all.check(Site::ConnWrite), None);
        assert_eq!(all.total_fires(), 3);
    }

    #[test]
    fn same_seed_same_stalls() {
        let mk = || {
            FaultPlan::new(42)
                .stall(Duration::from_millis(20))
                .with(FaultSpec {
                    site: Site::ConnStall,
                    first: 1,
                    every: 1,
                    count: 5,
                })
                .arm()
        };
        let (a, b) = (mk(), mk());
        for _ in 0..5 {
            assert_eq!(a.check(Site::ConnStall), b.check(Site::ConnStall));
        }
    }

    #[test]
    fn mmap_budget_arms_the_mmapio_hook() {
        let faults = FaultPlan::new(3)
            .with(FaultSpec {
                site: Site::MmapOpen,
                first: 1,
                every: 1,
                count: 2,
            })
            .arm();
        // The hook is process-global, and sibling tests in this binary
        // also map snapshot files (their loaders fall back to a heap
        // read when an injected failure lands on them, so a stolen
        // firing is harmless there). Drive map attempts until the armed
        // budget is provably spent, then prove mapping works again.
        let path = std::env::temp_dir().join(format!("faults-mmap-{}", std::process::id()));
        std::fs::write(&path, vec![0u8; 4096]).unwrap();
        let f = std::fs::File::open(&path).unwrap();
        let mut injected_here = 0;
        while faults.fires(Site::MmapOpen) < 2 && injected_here < 64 {
            if mmapio::Mmap::map_file(&f).is_err() {
                injected_here += 1;
            }
        }
        assert_eq!(faults.fires(Site::MmapOpen), 2, "budget never drained");
        assert!(mmapio::Mmap::map_file(&f).is_ok());
        mmapio::faults::reset();
        let _ = std::fs::remove_file(&path);
    }
}
