//! The TCP server: accept loop → connection readers → micro-batching
//! probe workers → epoch-pinned snapshot.
//!
//! ## Threading model (std::net, no async runtime)
//!
//! * One **accept loop** hands each connection its own reader thread.
//! * Each **connection thread** decodes frames, converts coordinates to
//!   leaf cells (spreading that work across connections), enqueues a
//!   [`Job`] on the shared queue, and writes the worker's reply back.
//!   Requests on one connection are answered in order.
//! * A small pool of **probe workers** drains the queue in **adaptive
//!   micro-batches**: drain-until-empty, up to [`ServeConfig::batch_lanes`]
//!   points per batch (256 by default — one full level-synchronous
//!   `lookup_batch` block). Under light load a worker wakes per request
//!   and latency is one queue hop; under heavy load the queue fills and
//!   batches widen toward the lane budget automatically — the same
//!   load-adaptive batching story as the paper's online join, with the
//!   batch riding the existing memory-level-parallel trie walk.
//! * Every micro-batch pins one `(snapshot, epoch)` pair from the
//!   [`IndexStore`]; a concurrent hot-swap affects only later batches,
//!   so no request ever observes a torn index.
//!
//! Shutdown is cooperative: a flag + condvar broadcast; connection
//! threads poll the flag between (and, via read timeouts, inside)
//! frames. [`ServerHandle::shutdown`] (or drop) joins everything.

use crate::protocol as proto;
use crate::swap::{snapshot_signature, watch_loop, IndexStore};
use act_core::{coord_to_cell, MappedSnapshot, Probe, Refiner, SnapshotError};
use geom::Coord;
use s2cell::CellId;
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A failure spawning the server.
#[derive(Debug)]
pub enum ServeError {
    /// Socket/bind/thread failures.
    Io(io::Error),
    /// The initial snapshot could not be opened or validated.
    Snapshot(SnapshotError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve I/O error: {e}"),
            ServeError::Snapshot(e) => write!(f, "serve snapshot error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Snapshot(e) => Some(e),
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> ServeError {
        ServeError::Snapshot(e)
    }
}

/// Server tuning knobs. `Default` is a sensible local server: ephemeral
/// loopback port, one worker per hardware thread, 256-lane batches, a
/// 200 ms snapshot watcher, approximate mode only.
#[derive(Debug)]
pub struct ServeConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Probe worker shards (minimum 1).
    pub workers: usize,
    /// Micro-batch lane budget: a batch closes at this many points (or
    /// when the queue runs dry). 256 matches one level-synchronous
    /// `lookup_batch` block.
    pub batch_lanes: usize,
    /// Polygon refiner enabling the protocol's EXACT flag. Must be
    /// built from the same polygon set as the served snapshots — the
    /// hot-swap path ships cell tries, not geometry, so swapping to a
    /// snapshot of *different* polygons with a stale refiner is an
    /// operator error.
    pub refiner: Option<Refiner>,
    /// Snapshot-file poll interval for hot-swap; `None` disables the
    /// watcher.
    pub watch: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            batch_lanes: 256,
            refiner: None,
            watch: Some(Duration::from_millis(200)),
        }
    }
}

/// Aggregate serving counters (see [`ServerHandle::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Probe points answered.
    pub probes: u64,
    /// Frames handled (probes + pings).
    pub requests: u64,
    /// Micro-batches executed (probes / batches = achieved batch width).
    pub batches: u64,
    /// Current snapshot epoch (1 + successful hot-swaps).
    pub epoch: u32,
}

/// One enqueued probe request.
struct Job {
    cells: Vec<CellId>,
    coords: Vec<Coord>,
    exact: bool,
    reply: mpsc::SyncSender<Reply>,
}

/// A worker's answer to one [`Job`], ready to frame.
struct Reply {
    status: u8,
    epoch: u32,
    n: u32,
    payload: Vec<u8>,
}

struct State {
    store: IndexStore,
    refiner: Option<Refiner>,
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    shutdown: AtomicBool,
    batch_lanes: usize,
    probes: AtomicU64,
    requests: AtomicU64,
    batches: AtomicU64,
}

/// Spawns an [`act-serve`](crate) server over the snapshot at
/// `snapshot_path` and returns a handle once it is accepting.
pub struct Server;

impl Server {
    /// Opens (mmap-preferred) and validates the snapshot, binds
    /// `config.addr`, and starts the worker pool, accept loop, and
    /// (unless disabled) the hot-swap watcher.
    ///
    /// # Errors
    /// [`ServeError::Snapshot`] when the initial snapshot is unusable,
    /// [`ServeError::Io`] when the bind fails.
    pub fn spawn(
        snapshot_path: impl Into<PathBuf>,
        config: ServeConfig,
    ) -> Result<ServerHandle, ServeError> {
        let path = snapshot_path.into();
        // Signature before open: if the file is replaced in the gap, the
        // watcher sees a change and re-loads — never the reverse race
        // (baselining on a file newer than the one being served).
        let initial_sig = snapshot_signature(&path);
        let snap = MappedSnapshot::open(&path)?;
        let listener = TcpListener::bind(config.addr.as_str())?;
        let addr = listener.local_addr()?;
        let state = Arc::new(State {
            store: IndexStore::new(snap),
            refiner: config.refiner,
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            batch_lanes: config.batch_lanes.max(1),
            probes: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let mut threads = Vec::new();
        for w in 0..config.workers.max(1) {
            let st = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("act-serve-worker-{w}"))
                    .spawn(move || worker_loop(&st))
                    .expect("spawn probe worker"),
            );
        }
        {
            let (st, cn) = (Arc::clone(&state), Arc::clone(&conns));
            threads.push(
                std::thread::Builder::new()
                    .name("act-serve-accept".to_string())
                    .spawn(move || accept_loop(listener, st, cn))
                    .expect("spawn accept loop"),
            );
        }
        let watcher = config.watch.map(|interval| {
            let st = Arc::clone(&state);
            let p = path.clone();
            std::thread::Builder::new()
                .name("act-serve-watch".to_string())
                .spawn(move || watch_loop(&p, interval, &st.store, &st.shutdown, initial_sig))
                .expect("spawn snapshot watcher")
        });

        Ok(ServerHandle {
            addr,
            state,
            conns,
            threads,
            watcher,
        })
    }
}

/// A running server. Dropping it (or calling [`ServerHandle::shutdown`])
/// stops accepting, wakes every thread, and joins them all.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<State>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    threads: Vec<JoinHandle<()>>,
    watcher: Option<JoinHandle<u64>>,
}

impl ServerHandle {
    /// The bound address (resolve the ephemeral port here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving snapshot epoch (1 + successful hot-swaps).
    pub fn epoch(&self) -> u32 {
        self.state.store.epoch()
    }

    /// Aggregate serving counters so far.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            probes: self.state.probes.load(Ordering::Relaxed),
            requests: self.state.requests.load(Ordering::Relaxed),
            batches: self.state.batches.load(Ordering::Relaxed),
            epoch: self.state.store.epoch(),
        }
    }

    /// Stops the server and joins every thread. Equivalent to dropping
    /// the handle, but explicit at call sites that care about ordering.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.state.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Notify while holding the queue mutex: a worker that already
        // checked the shutdown flag but has not yet parked in wait()
        // still holds the lock, so acquiring it here orders this
        // notify_all after that worker reaches wait() — no lost wakeup,
        // no join() deadlock.
        {
            let _guard = self.state.queue.lock().expect("probe queue");
            self.state.ready.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(w) = self.watcher.take() {
            let _ = w.join();
        }
        // Accept loop is down: the connection set is final. Join it.
        let conns = std::mem::take(&mut *self.conns.lock().expect("conns lock"));
        for c in conns {
            let _ = c.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------
// Accept + connection threads
// ---------------------------------------------------------------------

fn accept_loop(listener: TcpListener, state: Arc<State>, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    while !state.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let st = Arc::clone(&state);
                let handle = std::thread::Builder::new()
                    .name("act-serve-conn".to_string())
                    .spawn(move || conn_loop(stream, &st))
                    .expect("spawn connection thread");
                let mut guard = conns.lock().expect("conns lock");
                guard.push(handle);
                // Reap finished connections so a long-lived server's
                // handle list doesn't grow without bound.
                if guard.len() > 64 {
                    guard.retain(|h| !h.is_finished());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// How a shutdown-aware buffered read ended.
enum Fill {
    Full,
    CleanEof,
    Shutdown,
}

/// Fills `buf` from `stream`, retrying read timeouts (the stream runs
/// with a short read timeout precisely so this loop can poll the
/// shutdown flag mid-frame without losing framing).
fn fill(stream: &mut TcpStream, buf: &mut [u8], shutdown: &AtomicBool) -> io::Result<Fill> {
    let mut at = 0;
    while at < buf.len() {
        if shutdown.load(Ordering::Acquire) {
            return Ok(Fill::Shutdown);
        }
        match stream.read(&mut buf[at..]) {
            Ok(0) => {
                return if at == 0 {
                    Ok(Fill::CleanEof)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(k) => at += k,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Fill::Full)
}

/// Reads one request frame body; `Ok(None)` means the connection is done
/// (clean EOF or server shutdown).
fn read_request_frame(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match fill(stream, &mut len, shutdown)? {
        Fill::Full => {}
        Fill::CleanEof | Fill::Shutdown => return Ok(None),
    }
    let body_len = u32::from_le_bytes(len) as usize;
    if body_len > proto::MAX_REQ_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request frame exceeds the protocol cap",
        ));
    }
    let mut body = vec![0u8; body_len];
    match fill(stream, &mut body, shutdown)? {
        Fill::Full => Ok(Some(body)),
        Fill::CleanEof => Err(io::ErrorKind::UnexpectedEof.into()),
        Fill::Shutdown => Ok(None),
    }
}

fn conn_loop(mut stream: TcpStream, state: &State) {
    // BSD-derived unixes make accepted sockets inherit the listener's
    // O_NONBLOCK (Linux does not); force blocking so the read timeout
    // below actually blocks instead of busy-spinning on WouldBlock.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    // Depth 1 is enough: this thread never has more than one job in
    // flight (requests on a connection are answered in order).
    let (reply_tx, reply_rx) = mpsc::sync_channel::<Reply>(1);
    loop {
        let body = match read_request_frame(&mut stream, &state.shutdown) {
            Ok(Some(b)) => b,
            Ok(None) => return,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let f = proto::encode_response(
                    0,
                    proto::STATUS_BAD_REQUEST,
                    state.store.epoch(),
                    0,
                    &[],
                );
                let _ = stream.write_all(&f);
                return;
            }
            Err(_) => return,
        };
        state.requests.fetch_add(1, Ordering::Relaxed);
        match proto::decode_request(&body) {
            Err(_) => {
                let f = proto::encode_response(
                    body.first().copied().unwrap_or(0),
                    proto::STATUS_BAD_REQUEST,
                    state.store.epoch(),
                    0,
                    &[],
                );
                let _ = stream.write_all(&f);
                return;
            }
            Ok(proto::Request::Ping) => {
                let payload = state.probes.load(Ordering::Relaxed).to_le_bytes();
                let f = proto::encode_response(
                    proto::OP_PING,
                    proto::STATUS_OK,
                    state.store.epoch(),
                    0,
                    &payload,
                );
                if stream.write_all(&f).is_err() {
                    return;
                }
            }
            Ok(proto::Request::Probe { coords, exact }) => {
                let cells: Vec<CellId> = coords.iter().map(|&c| coord_to_cell(c)).collect();
                {
                    let mut q = state.queue.lock().expect("probe queue");
                    q.push_back(Job {
                        cells,
                        coords,
                        exact,
                        reply: reply_tx.clone(),
                    });
                }
                state.ready.notify_one();
                let reply = loop {
                    match reply_rx.recv_timeout(Duration::from_millis(50)) {
                        Ok(r) => break Some(r),
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            if state.shutdown.load(Ordering::Acquire) {
                                break None;
                            }
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => break None,
                    }
                };
                let Some(reply) = reply else { return };
                let f = proto::encode_response(
                    proto::OP_PROBE,
                    reply.status,
                    reply.epoch,
                    reply.n,
                    &reply.payload,
                );
                if stream.write_all(&f).is_err() {
                    return;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Probe workers
// ---------------------------------------------------------------------

fn worker_loop(state: &State) {
    loop {
        let batch = {
            let mut q = state.queue.lock().expect("probe queue");
            loop {
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if !q.is_empty() {
                    break;
                }
                q = state.ready.wait(q).expect("probe queue wait");
            }
            // Adaptive micro-batch: drain until the queue is empty or
            // the lane budget is met. A single over-budget job still
            // runs alone (lookup_batch blocks internally).
            let mut lanes = 0usize;
            let mut batch = Vec::new();
            while let Some(front) = q.front() {
                if !batch.is_empty() && lanes + front.cells.len() > state.batch_lanes {
                    break;
                }
                lanes += front.cells.len();
                batch.push(q.pop_front().expect("front checked"));
                if lanes >= state.batch_lanes {
                    break;
                }
            }
            batch
        };
        process_batch(state, batch);
    }
}

/// Answers one micro-batch against a single pinned `(snapshot, epoch)`.
fn process_batch(state: &State, batch: Vec<Job>) {
    let (snap, epoch) = state.store.current();
    let view = snap.view();
    let total: usize = batch.iter().map(|j| j.cells.len()).sum();
    let mut cells = Vec::with_capacity(total);
    for job in &batch {
        cells.extend_from_slice(&job.cells);
    }
    let mut probes = vec![Probe::Miss; cells.len()];
    view.probe_batch(&cells, &mut probes);
    state.probes.fetch_add(total as u64, Ordering::Relaxed);
    state.batches.fetch_add(1, Ordering::Relaxed);

    let mut at = 0usize;
    for job in batch {
        let n = job.cells.len();
        let out = &probes[at..at + n];
        at += n;
        let reply = if job.exact && state.refiner.is_none() {
            Reply {
                status: proto::STATUS_UNSUPPORTED,
                epoch,
                n: 0,
                payload: Vec::new(),
            }
        } else {
            let mut payload = Vec::with_capacity(n * 8);
            for (i, &p) in out.iter().enumerate() {
                let count_at = payload.len();
                payload.extend_from_slice(&0u32.to_le_bytes());
                let mut count = 0u32;
                if job.exact {
                    let refiner = state.refiner.as_ref().expect("checked above");
                    for (id, interior) in view.resolve_refs(p) {
                        // True hits skip the point-in-polygon test — the
                        // paper's true-hit filtering, carried onto the wire.
                        if interior || refiner.contains(id, job.coords[i]) {
                            payload.extend_from_slice(&proto::encode_ref(id, true).to_le_bytes());
                            count += 1;
                        }
                    }
                } else {
                    for (id, hit) in view.resolve_refs(p) {
                        payload.extend_from_slice(&proto::encode_ref(id, hit).to_le_bytes());
                        count += 1;
                    }
                }
                payload[count_at..count_at + 4].copy_from_slice(&count.to_le_bytes());
            }
            Reply {
                status: proto::STATUS_OK,
                epoch,
                n: n as u32,
                payload,
            }
        };
        // A send failure means the connection died while we probed;
        // nothing to deliver to.
        let _ = job.reply.send(reply);
    }
}
