//! The TCP server: accept loop → connection readers → micro-batching
//! probe workers → epoch-pinned snapshot, with admission control and a
//! graceful-drain lifecycle on top.
//!
//! ## Threading model (std::net, no async runtime)
//!
//! * One **accept loop** hands each connection its own reader thread —
//!   unless the server is at [`ServeConfig::max_connections`], in which
//!   case the connection is answered with a single `BUSY` frame and
//!   closed before a thread is ever spawned.
//! * Each **connection thread** decodes frames, converts coordinates to
//!   leaf cells (spreading that work across connections), and admits a
//!   [`Job`] to the shared bounded queue. Up to
//!   [`ServeConfig::max_inflight_frames`] frames may be in flight per
//!   connection (a pipelining client overlaps request and response
//!   streams); once the cap is hit the thread **stops reading** until the
//!   oldest reply is written, so a connection whose responses back up
//!   slows its own reads via ordinary TCP backpressure instead of
//!   buffering without bound. Replies always go out in request order.
//! * The queue is **bounded in lanes** (points), not frames: admission
//!   takes `queued_lanes + frame_lanes <= queue_depth_lanes`, so the
//!   worst-case queued work — and the memory behind it — is capped no
//!   matter how the traffic is framed. An overflowing probe frame is
//!   answered immediately with `LOADSHED` (never silently dropped) and
//!   the connection stays open.
//! * A small pool of **probe workers** drains the queue in **adaptive
//!   micro-batches**: drain-until-empty, up to [`ServeConfig::batch_lanes`]
//!   points per batch (256 by default — one full level-synchronous
//!   `lookup_batch` block). Under light load a worker wakes per request
//!   and latency is one queue hop; under heavy load the queue fills and
//!   batches widen toward the lane budget automatically — the same
//!   load-adaptive batching story as the paper's online join, with the
//!   batch riding the existing memory-level-parallel trie walk.
//! * Every micro-batch pins one `(snapshot, epoch)` pair from the
//!   [`IndexStore`]; a concurrent hot-swap affects only later batches,
//!   so no request ever observes a torn index.
//! * Workers run each batch's compute under `catch_unwind`: a panic
//!   poisons exactly one batch (its frames are answered with typed
//!   `INTERNAL` replies and `panics_contained` bumps) instead of the
//!   process — the worker survives to take the next batch.
//!
//! ## Graceful drain
//!
//! [`ServerHandle::shutdown`] (or drop) flips one `draining` flag and
//! then joins everything, in dependency order:
//!
//! 1. The accept loop exits — no new connections.
//! 2. Connection readers stop reading (a partially read frame is
//!    abandoned, never half-admitted) — no new work. Admission is
//!    checked under the queue lock, so "accepted before shutdown" is a
//!    linearization point, not a race.
//! 3. Workers drain every job still queued, then exit — every accepted
//!    frame gets its real answer.
//! 4. Connection threads flush their pending replies (bounded by
//!    [`ServeConfig::drain_grace`], so one stalled client cannot wedge
//!    shutdown), then close.

use crate::cache::{CacheConfig, HotCellCache};
use crate::obs::{render_counters, render_histograms, render_trace_meta, ObsConfig, PipelineObs};
use crate::protocol as proto;
use crate::swap::{snapshot_signature, watch_loop_opts, IndexStore, WatchCounters, WatchOptions};
use act_core::{coord_to_cell, MappedSnapshot, Probe, Refiner, SnapshotError};
use act_obs::PromText;
use geom::Coord;
use s2cell::CellId;
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

#[cfg(feature = "fault-injection")]
use crate::faults::{FaultAction, Faults, Site};

/// A failure spawning the server.
#[derive(Debug)]
pub enum ServeError {
    /// Socket/bind/thread failures.
    Io(io::Error),
    /// The initial snapshot could not be opened or validated.
    Snapshot(SnapshotError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve I/O error: {e}"),
            ServeError::Snapshot(e) => write!(f, "serve snapshot error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Snapshot(e) => Some(e),
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> ServeError {
        ServeError::Snapshot(e)
    }
}

/// Server tuning knobs. `Default` is a sensible local server: ephemeral
/// loopback port, one worker per hardware thread, 256-lane batches, a
/// 200 ms snapshot watcher, approximate mode only, and admission limits
/// loose enough that well-behaved traffic never sees them.
#[derive(Debug)]
pub struct ServeConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Probe worker shards (minimum 1).
    pub workers: usize,
    /// Micro-batch lane budget: a batch closes at this many points (or
    /// when the queue runs dry). 256 matches one level-synchronous
    /// `lookup_batch` block.
    pub batch_lanes: usize,
    /// Polygon refiner enabling the protocol's EXACT flag. Must be
    /// built from the same polygon set as the served snapshots — the
    /// hot-swap path ships cell tries, not geometry, so swapping to a
    /// snapshot of *different* polygons with a stale refiner is an
    /// operator error.
    pub refiner: Option<Refiner>,
    /// Snapshot-file poll interval for hot-swap; `None` disables the
    /// watcher.
    pub watch: Option<Duration>,
    /// Probe-queue depth in **lanes** (points), the bounded-memory knob:
    /// a probe frame is admitted only if `queued + frame_lanes` stays
    /// within this cap, else it is answered `LOADSHED` immediately.
    /// Frames larger than the whole depth are therefore *always* shed —
    /// size it at least [`proto::MAX_POINTS`] (the default) unless you
    /// also bound client frame sizes.
    pub queue_depth_lanes: usize,
    /// Max frames in flight per connection before the reader stops
    /// reading (TCP backpressure to that client). Bounds per-connection
    /// reply buffering.
    pub max_inflight_frames: usize,
    /// Max simultaneously served connections; the accept loop answers
    /// excess connections with one `BUSY` frame and closes them.
    pub max_connections: usize,
    /// How long a draining connection keeps trying to flush owed replies
    /// before giving up (protects shutdown from a stalled client).
    pub drain_grace: Duration,
    /// Fault-injection / capacity-pinning knob: sleep this long before
    /// every micro-batch. `None` (the default) in production; the chaos
    /// suite and `loadgen --overload` use it to make "capacity" a known
    /// constant so shedding is deterministic.
    pub batch_delay: Option<Duration>,
    /// Pipeline observability: per-stage latency histograms, the
    /// batch-size and probe-depth histograms, and the sampled trace
    /// ring. `None` (the default) records nothing and takes **zero**
    /// clock reads on the hot path; see [`crate::obs`].
    pub obs: Option<ObsConfig>,
    /// Hot-cell result cache consulted by the worker batch path before
    /// the trie walk; entries key on the **resolved trie cell** and
    /// carry their fill epoch, so hot-swaps invalidate structurally
    /// (see [`crate::cache`]). `None` (the default) probes every lane.
    pub cache: Option<CacheConfig>,
    /// Per-client fairness: the admitted-lanes quota one connection may
    /// have in flight. A probe frame that would push its connection
    /// past this is answered `LOADSHED` (with the retry hint) *before*
    /// the shared queue is consulted, so one greedy pipeliner cannot
    /// starve polite clients of queue depth. `None` (the default)
    /// enforces nothing.
    pub client_quota_lanes: Option<usize>,
    /// An armed fault plan ([`crate::faults::FaultPlan::arm`]); hooks in
    /// the workers, connection writers, and the watcher consult it.
    /// `None` injects nothing. Only present under the `fault-injection`
    /// feature — production builds carry no hook sites at all.
    #[cfg(feature = "fault-injection")]
    pub faults: Option<Arc<Faults>>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            batch_lanes: 256,
            refiner: None,
            watch: Some(Duration::from_millis(200)),
            queue_depth_lanes: proto::MAX_POINTS,
            max_inflight_frames: 16,
            max_connections: 256,
            drain_grace: Duration::from_secs(5),
            batch_delay: None,
            obs: None,
            cache: None,
            client_quota_lanes: None,
            #[cfg(feature = "fault-injection")]
            faults: None,
        }
    }
}

/// Aggregate serving counters (see [`ServerHandle::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Probe points answered.
    pub probes: u64,
    /// Frames handled (accepted + malformed).
    pub requests: u64,
    /// Micro-batches executed (probes / batches = achieved batch width).
    pub batches: u64,
    /// Current snapshot epoch (1 + successful hot-swaps).
    pub epoch: u32,
    /// Well-formed frames taken in (probe/ping/stats, shed included).
    pub accepted: u64,
    /// Frames answered with a real (non-LOADSHED) reply.
    pub answered: u64,
    /// Probe frames answered `LOADSHED`.
    pub shed: u64,
    /// Malformed frames answered `BAD_REQUEST`.
    pub bad_frames: u64,
    /// Connections refused `BUSY` at the accept gate.
    pub busy: u64,
    /// Highest queue occupancy observed, in lanes (≤ configured depth).
    pub queue_high_water_lanes: u64,
    /// Worker panics contained by `catch_unwind` (each poisoned exactly
    /// one batch, answered `INTERNAL`).
    pub panics_contained: u64,
    /// Transient IO errors hit by the snapshot watcher.
    pub watch_errors: u64,
    /// Corrupt/wrong-chain delta files quarantined by the watcher.
    pub quarantines: u64,
    /// Probed cells answered from the hot-cell cache (0 with no cache).
    pub cache_hits: u64,
    /// Probed cells that missed the cache and walked the trie.
    pub cache_misses: u64,
    /// Probe frames shed by the per-client fairness quota (a subset of
    /// `shed`).
    pub quota_sheds: u64,
}

/// One enqueued probe request.
struct Job {
    cells: Vec<CellId>,
    coords: Vec<Coord>,
    exact: bool,
    reply: mpsc::SyncSender<Reply>,
    /// Admission timestamp; `Some` only with observability on (the
    /// worker derives queue-wait from it, the writer frame-total).
    admitted: Option<Instant>,
    /// The owning connection's in-flight-lanes counter (the fairness
    /// quota's book). Charged at admission by the reader; released by
    /// the worker when the reply is produced — through the `Arc`, so a
    /// connection that dies mid-flight still gets its lanes back.
    quota: Arc<AtomicU64>,
}

/// A worker's answer to one [`Job`], ready to frame.
struct Reply {
    status: u8,
    epoch: u32,
    n: u32,
    payload: Vec<u8>,
}

/// The bounded probe queue. `lanes` mirrors the summed `cells.len()` of
/// `jobs` so admission is O(1); both live under one mutex so admission,
/// batch formation, and the drain-exit check are linearized.
struct Queue {
    jobs: VecDeque<Job>,
    lanes: usize,
}

struct State {
    store: IndexStore,
    refiner: Option<Refiner>,
    queue: Mutex<Queue>,
    ready: Condvar,
    draining: AtomicBool,
    batch_lanes: usize,
    queue_depth_lanes: usize,
    max_inflight: usize,
    drain_grace: Duration,
    batch_delay: Option<Duration>,
    conns_live: AtomicUsize,
    probes: AtomicU64,
    accepted: AtomicU64,
    answered: AtomicU64,
    shed: AtomicU64,
    bad_frames: AtomicU64,
    busy: AtomicU64,
    batches: AtomicU64,
    queue_hw_lanes: AtomicU64,
    panics_contained: AtomicU64,
    /// Probe frames shed by the per-client quota (also counted in
    /// `shed`; the split tells overload from unfairness on /metrics).
    quota_sheds: AtomicU64,
    /// The per-connection admitted-lanes quota; `None` enforces nothing.
    quota_lanes: Option<usize>,
    /// The hot-cell result cache; `None` walks every lane.
    cache: Option<Arc<HotCellCache>>,
    /// Watcher-side counters (transient IO errors, quarantined deltas),
    /// shared with the watch thread.
    watch: Arc<WatchCounters>,
    /// Lanes actually answered by workers, paired with `started` to give
    /// the measured drain rate behind retry-after hints.
    drained_lanes: AtomicU64,
    started: Instant,
    /// Queue high-water mark since the last flagged STATS read (see
    /// `CounterBlock::window_high_water_lanes`). Always maintained —
    /// one relaxed `fetch_max` under the queue lock — so the windowed
    /// mark works with observability off too.
    window_hw_lanes: AtomicU64,
    /// Per-stage histograms + trace ring; `None` ⇒ no clock reads.
    obs: Option<Arc<PipelineObs>>,
    #[cfg(feature = "fault-injection")]
    faults: Option<Arc<Faults>>,
}

impl State {
    fn counter_block(&self) -> proto::CounterBlock {
        proto::CounterBlock {
            probes: self.probes.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            bad_frames: self.bad_frames.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            swaps: self.store.swaps(),
            queue_high_water_lanes: self.queue_hw_lanes.load(Ordering::Relaxed),
            delta_applies: self.store.delta_applies(),
            watch_errors: self.watch.errors(),
            quarantines: self.watch.quarantines(),
            panics_contained: self.panics_contained.load(Ordering::Relaxed),
            window_high_water_lanes: self.window_hw_lanes.load(Ordering::Relaxed),
            cache_hits: self.cache.as_ref().map_or(0, |c| c.hits()),
            cache_misses: self.cache.as_ref().map_or(0, |c| c.misses()),
            quota_sheds: self.quota_sheds.load(Ordering::Relaxed),
        }
    }

    /// The extended-stats payload for a flagged STATS reply: current
    /// counters with the **windowed** high-water mark taken (reset to
    /// zero — documented semantics of the flagged read) plus every stage
    /// histogram (empty section with observability off).
    fn stats_ex_payload(&self) -> Vec<u8> {
        let mut block = self.counter_block();
        block.window_high_water_lanes = self.window_hw_lanes.swap(0, Ordering::Relaxed);
        let hists = self
            .obs
            .as_ref()
            .map(|o| o.stage_histograms())
            .unwrap_or_default();
        proto::encode_stats_ex_payload(&block, &hists)
    }

    /// The `retry_after_ms` hint for a reject emitted right now: the
    /// estimated time for the current queue to drain at the measured
    /// rate (see [`proto::suggest_retry_after_ms`]).
    fn retry_hint_ms(&self) -> u32 {
        let queued = queued_lanes(&self.queue);
        let secs = self.started.elapsed().as_secs_f64();
        let rate = if secs > 0.0 {
            self.drained_lanes.load(Ordering::Relaxed) as f64 / secs
        } else {
            0.0
        };
        proto::suggest_retry_after_ms(queued, rate)
    }
}

/// The queue's current depth in lanes, recovered through lock poison.
/// A worker panicking under the queue lock poisons it, but `lanes` is a
/// plain counter kept consistent at every await-free update — there is
/// no torn state to fear. The old `.map(..).unwrap_or(0)` masked poison
/// as an **empty** queue, so a server that had just contained a panic
/// under load advertised near-zero retry hints at exactly the moment it
/// was sickest, inviting the whole herd back early.
fn queued_lanes(queue: &Mutex<Queue>) -> u64 {
    queue.lock().unwrap_or_else(PoisonError::into_inner).lanes as u64
}

/// Spawns an [`act-serve`](crate) server over the snapshot at
/// `snapshot_path` and returns a handle once it is accepting.
pub struct Server;

impl Server {
    /// Opens (mmap-preferred) and validates the snapshot, binds
    /// `config.addr`, and starts the worker pool, accept loop, and
    /// (unless disabled) the hot-swap watcher.
    ///
    /// # Errors
    /// [`ServeError::Snapshot`] when the initial snapshot is unusable,
    /// [`ServeError::Io`] when the bind fails.
    pub fn spawn(
        snapshot_path: impl Into<PathBuf>,
        config: ServeConfig,
    ) -> Result<ServerHandle, ServeError> {
        let path = snapshot_path.into();
        // Signature before open: if the file is replaced in the gap, the
        // watcher sees a change and re-loads — never the reverse race
        // (baselining on a file newer than the one being served).
        let initial_sig = snapshot_signature(&path);
        let snap = MappedSnapshot::open(&path)?;
        let listener = TcpListener::bind(config.addr.as_str())?;
        let addr = listener.local_addr()?;
        let state = Arc::new(State {
            store: IndexStore::new(snap),
            refiner: config.refiner,
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                lanes: 0,
            }),
            ready: Condvar::new(),
            draining: AtomicBool::new(false),
            batch_lanes: config.batch_lanes.max(1),
            queue_depth_lanes: config.queue_depth_lanes,
            max_inflight: config.max_inflight_frames.max(1),
            drain_grace: config.drain_grace,
            batch_delay: config.batch_delay,
            conns_live: AtomicUsize::new(0),
            probes: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            answered: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            bad_frames: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            queue_hw_lanes: AtomicU64::new(0),
            panics_contained: AtomicU64::new(0),
            quota_sheds: AtomicU64::new(0),
            quota_lanes: config.client_quota_lanes,
            cache: config
                .cache
                .as_ref()
                .map(|c| Arc::new(HotCellCache::new(c))),
            watch: Arc::new(WatchCounters::default()),
            drained_lanes: AtomicU64::new(0),
            started: Instant::now(),
            window_hw_lanes: AtomicU64::new(0),
            obs: config.obs.as_ref().map(|c| Arc::new(PipelineObs::new(c))),
            #[cfg(feature = "fault-injection")]
            faults: config.faults,
        });
        let max_connections = config.max_connections;
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let mut threads = Vec::new();
        for w in 0..config.workers.max(1) {
            let st = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("act-serve-worker-{w}"))
                    .spawn(move || worker_loop(&st))
                    .expect("spawn probe worker"),
            );
        }
        {
            let (st, cn) = (Arc::clone(&state), Arc::clone(&conns));
            threads.push(
                std::thread::Builder::new()
                    .name("act-serve-accept".to_string())
                    .spawn(move || accept_loop(listener, st, cn, max_connections))
                    .expect("spawn accept loop"),
            );
        }
        let watcher = config.watch.map(|interval| {
            let st = Arc::clone(&state);
            let p = path.clone();
            let opts = WatchOptions {
                interval,
                counters: Arc::clone(&st.watch),
                trace: st.obs.as_ref().map(|o| Arc::clone(&o.trace)),
                #[cfg(feature = "fault-injection")]
                faults: st.faults.clone(),
                ..WatchOptions::default()
            };
            std::thread::Builder::new()
                .name("act-serve-watch".to_string())
                .spawn(move || watch_loop_opts(&p, &st.store, &st.draining, initial_sig, opts))
                .expect("spawn snapshot watcher")
        });

        Ok(ServerHandle {
            addr,
            state,
            conns,
            threads,
            watcher,
        })
    }
}

/// A running server. Dropping it (or calling [`ServerHandle::shutdown`])
/// stops accepting, drains accepted work, flushes responses, and joins
/// every thread.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<State>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    threads: Vec<JoinHandle<()>>,
    watcher: Option<JoinHandle<u64>>,
}

impl ServerHandle {
    /// The bound address (resolve the ephemeral port here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving snapshot epoch (1 + successful hot-swaps).
    pub fn epoch(&self) -> u32 {
        self.state.store.epoch()
    }

    /// Aggregate serving counters so far.
    pub fn stats(&self) -> ServeStats {
        let c = self.state.counter_block();
        ServeStats {
            probes: c.probes,
            requests: c.accepted + c.bad_frames,
            batches: c.batches,
            epoch: self.state.store.epoch(),
            accepted: c.accepted,
            answered: c.answered,
            shed: c.shed,
            bad_frames: c.bad_frames,
            busy: c.busy,
            queue_high_water_lanes: c.queue_high_water_lanes,
            panics_contained: c.panics_contained,
            watch_errors: c.watch_errors,
            quarantines: c.quarantines,
            cache_hits: c.cache_hits,
            cache_misses: c.cache_misses,
            quota_sheds: c.quota_sheds,
        }
    }

    /// The sampled trace ring's current window as JSON lines, oldest
    /// first (`None` when observability is off). Non-destructive; the
    /// `act-serve` binary prints this on SIGINT as the trace drain.
    pub fn trace_json_lines(&self) -> Option<String> {
        self.state.obs.as_ref().map(|o| o.trace.dump_json_lines())
    }

    /// A self-contained `/metrics` renderer for
    /// [`act_obs::MetricsServer`]: the counter block as Prometheus
    /// counters/gauges, plus (with observability on) every stage
    /// histogram and the trace meta counter. Scrapes are read-only —
    /// the windowed high-water mark is consumed by flagged STATS reads,
    /// never by a scrape.
    pub fn metrics_fn(&self) -> Arc<dyn Fn() -> String + Send + Sync> {
        let state = Arc::clone(&self.state);
        Arc::new(move || {
            let mut page = PromText::new();
            render_counters(&mut page, &[], state.store.epoch(), &state.counter_block());
            if let Some(obs) = &state.obs {
                render_histograms(&mut page, &[], &obs.stage_histograms());
                render_trace_meta(&mut page, &[], &obs.trace);
            }
            page.finish()
        })
    }

    /// Gracefully drains and stops the server: stop accepting, answer
    /// everything already accepted, flush responses, join every thread.
    /// Equivalent to dropping the handle, but explicit at call sites
    /// that care about ordering — and it returns the **final** counters,
    /// captured after the drain, so work answered during the drain is
    /// included (a pre-shutdown `stats()` call would undercount it).
    pub fn shutdown(mut self) -> ServeStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        if self.state.draining.swap(true, Ordering::AcqRel) {
            return;
        }
        // Notify while holding the queue mutex: a worker that already
        // checked the draining flag but has not yet parked in wait()
        // still holds the lock, so acquiring it here orders this
        // notify_all after that worker reaches wait() — no lost wakeup,
        // no join() deadlock.
        {
            let _guard = self.state.queue.lock().expect("probe queue");
            self.state.ready.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(w) = self.watcher.take() {
            let _ = w.join();
        }
        // Accept loop is down: the connection set is final. Join it (the
        // workers above drained the queue first, so every pending reply
        // the connections are flushing already exists).
        let conns = std::mem::take(&mut *self.conns.lock().expect("conns lock"));
        for c in conns {
            let _ = c.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------
// Accept + connection threads
// ---------------------------------------------------------------------

fn accept_loop(
    listener: TcpListener,
    state: Arc<State>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    max_connections: usize,
) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    while !state.draining.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if state.conns_live.load(Ordering::Acquire) >= max_connections {
                    state.busy.fetch_add(1, Ordering::Relaxed);
                    refuse_busy(stream, &state);
                    continue;
                }
                state.conns_live.fetch_add(1, Ordering::AcqRel);
                let st = Arc::clone(&state);
                let handle = std::thread::Builder::new()
                    .name("act-serve-conn".to_string())
                    .spawn(move || {
                        // Decrement-on-exit guard so a panicking
                        // connection can never leak a connection slot.
                        struct Live<'a>(&'a State);
                        impl Drop for Live<'_> {
                            fn drop(&mut self) {
                                self.0.conns_live.fetch_sub(1, Ordering::AcqRel);
                            }
                        }
                        let _live = Live(&st);
                        conn_loop(stream, &st);
                    })
                    .expect("spawn connection thread");
                let mut guard = conns.lock().expect("conns lock");
                guard.push(handle);
                // Reap finished connections so a long-lived server's
                // handle list doesn't grow without bound.
                if guard.len() > 64 {
                    guard.retain(|h| !h.is_finished());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Answers a connection refused at the accept gate: one `BUSY` frame
/// (op 0 — there is no request to echo) carrying a retry-after hint,
/// best effort, then close.
fn refuse_busy(mut stream: TcpStream, state: &State) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let hint = proto::encode_retry_hint(state.retry_hint_ms());
    let frame = proto::encode_response(0, proto::STATUS_BUSY, state.store.epoch(), 0, &hint);
    let _ = stream.write_all(&frame);
}

/// How a shutdown-aware buffered read ended.
enum Fill {
    Full,
    CleanEof,
    Drain,
}

/// Admission verdict for one probe frame.
enum Admission {
    Enqueued,
    Shed,
    Draining,
}

/// Admits `job` to the bounded queue, or rejects it. The depth check and
/// the draining check both run under the queue lock, which linearizes
/// them against worker drain-exit: a job admitted here is *guaranteed* a
/// worker answer, and after drain begins nothing new is ever admitted.
fn try_enqueue(state: &State, job: Job) -> Admission {
    let lanes = job.cells.len();
    {
        let mut q = state.queue.lock().expect("probe queue");
        if state.draining.load(Ordering::Acquire) {
            return Admission::Draining;
        }
        if q.lanes + lanes > state.queue_depth_lanes {
            return Admission::Shed;
        }
        q.lanes += lanes;
        q.jobs.push_back(job);
        state
            .queue_hw_lanes
            .fetch_max(q.lanes as u64, Ordering::Relaxed);
        state
            .window_hw_lanes
            .fetch_max(q.lanes as u64, Ordering::Relaxed);
    }
    state.ready.notify_one();
    Admission::Enqueued
}

/// A reply owed to the client, in request order.
enum Pending {
    /// A probe job in flight; the worker delivers here. The `Instant`
    /// is the admission stamp (`Some` only with observability on) the
    /// writer turns into the frame-total histogram sample.
    Waiting(mpsc::Receiver<Reply>, Option<Instant>),
    /// An already-rendered frame (ping/stats/shed/bad-request).
    Ready(Vec<u8>),
}

/// The drain-grace clock shared by every blocking wait on a connection:
/// unbounded until draining (or a terminal flush) starts, then one fixed
/// deadline for everything that remains.
struct DrainClock {
    grace: Duration,
    deadline: Option<Instant>,
}

impl DrainClock {
    fn new(grace: Duration) -> DrainClock {
        DrainClock {
            grace,
            deadline: None,
        }
    }

    /// Starts the countdown now (idempotent).
    fn arm(&mut self) {
        self.deadline
            .get_or_insert_with(|| Instant::now() + self.grace);
    }

    /// True when blocking work should give up: armed (directly, or
    /// because the server is draining) and past the deadline.
    fn expired(&mut self, state: &State) -> bool {
        if self.deadline.is_none() {
            if !state.draining.load(Ordering::Acquire) {
                return false;
            }
            self.arm();
        }
        Instant::now() >= self.deadline.expect("armed above")
    }
}

/// A connection is two threads sharing the socket: this **reader**
/// (the `act-serve-conn` thread itself) decodes frames, admits jobs, and
/// pushes one [`Pending`] entry per frame onto a **bounded** in-order
/// channel; a scoped **writer** thread drains that channel, waiting on
/// each entry's reply and writing it out. The split keeps both
/// directions event-driven — a reply never waits for a read timeout to
/// be flushed — and the channel bound *is* the per-connection in-flight
/// cap: when the client's responses back up, the channel fills, the
/// reader stops reading, and TCP backpressure does the rest.
fn conn_loop(stream: TcpStream, state: &State) {
    // BSD-derived unixes make accepted sockets inherit the listener's
    // O_NONBLOCK (Linux does not); force blocking so the read timeout
    // below actually blocks instead of busy-spinning on WouldBlock.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    // The read timeout is only a drain-poll tick, never request latency.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let Ok(w) = stream.try_clone() else { return };
    let _ = w.set_write_timeout(Some(Duration::from_millis(50)));
    let (tx, rx) = mpsc::sync_channel::<Pending>(state.max_inflight);
    // Either side setting this tells the other to wind down (writer hit
    // an error or its drain deadline; reader hit EOF is signaled by the
    // channel disconnect instead).
    let dead = AtomicBool::new(false);
    // This connection's in-flight-lanes book for the fairness quota:
    // charged by the reader at admission, released by workers at reply
    // production. Kept even with the quota off — one relaxed add/sub
    // per frame — so flipping the knob needs no reconnects.
    let inflight_lanes = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("act-serve-conn-writer".to_string())
            .spawn_scoped(scope, || writer_loop(state, w, rx, &dead))
            .expect("spawn connection writer");
        let mut r = stream;
        reader_loop(state, &mut r, &tx, &dead, &inflight_lanes);
        // Dropping the sender is the writer's EOF: it delivers every
        // entry still owed (bounded by the drain grace), then exits; the
        // scope joins it.
        drop(tx);
    });
}

/// The read half: decode → admit → push the owed reply entry, in order.
fn reader_loop(
    state: &State,
    r: &mut TcpStream,
    tx: &mpsc::SyncSender<Pending>,
    dead: &AtomicBool,
    inflight_lanes: &Arc<AtomicU64>,
) {
    loop {
        let body = match read_request_frame(r, state, dead) {
            Ok(Some(b)) => b,
            // Clean EOF, drain, or writer death: stop reading. What is
            // already owed still flows through the writer.
            Ok(None) => return,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized frame: typed reject, then close.
                state.bad_frames.fetch_add(1, Ordering::Relaxed);
                let f = proto::encode_response(
                    0,
                    proto::STATUS_BAD_REQUEST,
                    state.store.epoch(),
                    0,
                    &[],
                );
                let _ = push_pending(tx, Pending::Ready(f), dead);
                drain_unread(r);
                return;
            }
            Err(_) => return,
        };
        match proto::decode_request(&body) {
            Err(_) => {
                state.bad_frames.fetch_add(1, Ordering::Relaxed);
                let f = proto::encode_response(
                    body.first().copied().unwrap_or(0),
                    proto::STATUS_BAD_REQUEST,
                    state.store.epoch(),
                    0,
                    &[],
                );
                let _ = push_pending(tx, Pending::Ready(f), dead);
                drain_unread(r);
                return;
            }
            Ok(proto::Request::Ping) => {
                if !answer_counters(state, tx, proto::OP_PING, dead) {
                    return;
                }
            }
            Ok(proto::Request::Stats { histograms: false }) => {
                if !answer_counters(state, tx, proto::OP_STATS, dead) {
                    return;
                }
            }
            Ok(proto::Request::Stats { histograms: true }) => {
                // The flagged (v3) read: extended counter block plus the
                // stage-histogram section, and the windowed high-water
                // mark is consumed (reset) by this read.
                state.accepted.fetch_add(1, Ordering::Relaxed);
                state.answered.fetch_add(1, Ordering::Relaxed);
                let payload = state.stats_ex_payload();
                let f = proto::encode_response(
                    proto::OP_STATS,
                    proto::STATUS_OK,
                    state.store.epoch(),
                    0,
                    &payload,
                );
                if !push_pending(tx, Pending::Ready(f), dead) {
                    return;
                }
            }
            Ok(proto::Request::Dump) => {
                state.accepted.fetch_add(1, Ordering::Relaxed);
                state.answered.fetch_add(1, Ordering::Relaxed);
                let f = match &state.obs {
                    Some(obs) => {
                        // Non-destructive: the ring keeps its window, so
                        // repeated dumps (and the SIGINT drain) overlap.
                        let lines = obs.trace.dump_json_lines();
                        proto::encode_response(
                            proto::OP_DUMP,
                            proto::STATUS_OK,
                            state.store.epoch(),
                            0,
                            lines.as_bytes(),
                        )
                    }
                    None => proto::encode_response(
                        proto::OP_DUMP,
                        proto::STATUS_UNSUPPORTED,
                        state.store.epoch(),
                        0,
                        &[],
                    ),
                };
                if !push_pending(tx, Pending::Ready(f), dead) {
                    return;
                }
            }
            Ok(req @ (proto::Request::Probe { .. } | proto::Request::ProbeCells { .. })) => {
                // Cell frames ship pre-computed S2 leaves, so the
                // conversion below (the priciest fixed cost on the
                // probe path) only runs for coordinate frames; the
                // decoder already rejected exact-mode cell frames.
                let (cells, coords, exact): (Vec<CellId>, Vec<Coord>, bool) = match req {
                    proto::Request::Probe { coords, exact } => (
                        coords.iter().map(|&c| coord_to_cell(c)).collect(),
                        coords,
                        exact,
                    ),
                    proto::Request::ProbeCells { cells } => (cells, Vec::new(), false),
                    _ => unreachable!("matched a probe form above"),
                };
                let lanes = cells.len();
                // Per-client fairness: a frame that would push this
                // connection past its admitted-lanes quota is shed
                // *before* the shared queue is consulted — the greedy
                // pipeliner pays, not the queue everyone shares. The
                // check is reader-local (one reader per connection, so
                // load-then-charge cannot race itself; workers only
                // ever subtract, which frees quota early at worst).
                if let Some(quota) = state.quota_lanes {
                    if inflight_lanes.load(Ordering::Acquire) as usize + lanes > quota {
                        state.accepted.fetch_add(1, Ordering::Relaxed);
                        state.shed.fetch_add(1, Ordering::Relaxed);
                        state.quota_sheds.fetch_add(1, Ordering::Relaxed);
                        if let Some(obs) = &state.obs {
                            obs.trace.always("quota_shed", &[("lanes", lanes as u64)]);
                        }
                        let hint = proto::encode_retry_hint(state.retry_hint_ms());
                        let f = proto::encode_response(
                            proto::OP_PROBE,
                            proto::STATUS_LOADSHED,
                            state.store.epoch(),
                            0,
                            &hint,
                        );
                        if !push_pending(tx, Pending::Ready(f), dead) {
                            return;
                        }
                        continue;
                    }
                }
                let (reply_tx, reply_rx) = mpsc::sync_channel::<Reply>(1);
                let admitted = state.obs.as_ref().map(|_| Instant::now());
                let job = Job {
                    cells,
                    coords,
                    exact,
                    reply: reply_tx,
                    admitted,
                    quota: Arc::clone(inflight_lanes),
                };
                match try_enqueue(state, job) {
                    Admission::Enqueued => {
                        inflight_lanes.fetch_add(lanes as u64, Ordering::AcqRel);
                        state.accepted.fetch_add(1, Ordering::Relaxed);
                        if let Some(obs) = &state.obs {
                            obs.trace.sampled(
                                "admission",
                                &[
                                    ("lanes", lanes as u64),
                                    ("exact", u64::from(exact)),
                                    ("epoch", u64::from(state.store.epoch())),
                                ],
                            );
                        }
                        if !push_pending(tx, Pending::Waiting(reply_rx, admitted), dead) {
                            return;
                        }
                    }
                    Admission::Shed => {
                        // Shed frames are answered, never dropped — and
                        // always with LOADSHED, nothing else. The payload
                        // carries the retry-after hint: how long until
                        // the queue that rejected this frame should have
                        // drained at the measured rate.
                        state.accepted.fetch_add(1, Ordering::Relaxed);
                        state.shed.fetch_add(1, Ordering::Relaxed);
                        if let Some(obs) = &state.obs {
                            obs.trace.always("shed", &[("lanes", lanes as u64)]);
                        }
                        let hint = proto::encode_retry_hint(state.retry_hint_ms());
                        let f = proto::encode_response(
                            proto::OP_PROBE,
                            proto::STATUS_LOADSHED,
                            state.store.epoch(),
                            0,
                            &hint,
                        );
                        if !push_pending(tx, Pending::Ready(f), dead) {
                            return;
                        }
                    }
                    // Not accepted: the drain owes this frame nothing.
                    Admission::Draining => return,
                }
            }
        }
    }
}

/// After a typed reject on a malformed frame, consume (and discard) the
/// request bytes the client may still be sending — bounded in bytes and
/// time — so closing the socket performs an orderly FIN instead of an
/// RST. Closing with unread data in the receive buffer makes the kernel
/// reset the connection, and a reset discards the queued reject before
/// the client can read it: the race the fuzz suite used to tolerate.
/// Exits as soon as the client pauses (one read-timeout tick), goes
/// quiet (EOF), or the bounds trip — a hostile sender cannot hold the
/// thread.
fn drain_unread(r: &mut TcpStream) {
    let deadline = Instant::now() + Duration::from_millis(200);
    let mut sunk = 0usize;
    let mut buf = [0u8; 4096];
    while sunk < 64 * 1024 && Instant::now() < deadline {
        match r.read(&mut buf) {
            Ok(0) => return, // client finished sending
            Ok(k) => sunk += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // WouldBlock/TimedOut: nothing in flight right now — the
            // socket's short read timeout already waited long enough.
            Err(_) => return,
        }
    }
}

/// Counts and renders a PING/STATS answer — through the pending FIFO,
/// so it cannot overtake an in-flight probe reply.
fn answer_counters(
    state: &State,
    tx: &mpsc::SyncSender<Pending>,
    op: u8,
    dead: &AtomicBool,
) -> bool {
    state.accepted.fetch_add(1, Ordering::Relaxed);
    state.answered.fetch_add(1, Ordering::Relaxed);
    let payload = proto::encode_counters(&state.counter_block());
    let f = proto::encode_response(op, proto::STATUS_OK, state.store.epoch(), 0, &payload);
    push_pending(tx, Pending::Ready(f), dead)
}

/// Pushes an owed reply onto the bounded channel. A full channel means
/// the connection is at its in-flight cap: the reader (our caller)
/// blocks here — which is exactly the read-side slowdown — until the
/// writer frees a slot or dies. Returns false when the writer is gone.
fn push_pending(tx: &mpsc::SyncSender<Pending>, entry: Pending, dead: &AtomicBool) -> bool {
    let mut entry = entry;
    loop {
        match tx.try_send(entry) {
            Ok(()) => return true,
            Err(mpsc::TrySendError::Full(e)) => {
                if dead.load(Ordering::Acquire) {
                    return false;
                }
                entry = e;
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(mpsc::TrySendError::Disconnected(_)) => return false,
        }
    }
}

/// The write half: deliver every owed reply, in order, event-driven.
/// After the reader disconnects the channel, whatever is buffered is
/// still delivered — that is the flush half of the graceful drain —
/// bounded by the drain grace once draining begins.
fn writer_loop(state: &State, mut w: TcpStream, rx: mpsc::Receiver<Pending>, dead: &AtomicBool) {
    let mut clock = DrainClock::new(state.drain_grace);
    let result: io::Result<()> = (|| {
        loop {
            let entry = loop {
                match rx.recv_timeout(Duration::from_millis(25)) {
                    Ok(e) => break e,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if clock.expired(state) {
                            return Err(io::ErrorKind::TimedOut.into());
                        }
                    }
                    // Reader gone and everything owed delivered: done.
                    Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
                }
            };
            let (frame, admitted) = match entry {
                Pending::Ready(f) => (f, None),
                Pending::Waiting(reply_rx, admitted) => loop {
                    match reply_rx.recv_timeout(Duration::from_millis(25)) {
                        Ok(reply) => {
                            break (
                                proto::encode_response(
                                    proto::OP_PROBE,
                                    reply.status,
                                    reply.epoch,
                                    reply.n,
                                    &reply.payload,
                                ),
                                admitted,
                            )
                        }
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            if clock.expired(state) {
                                return Err(io::ErrorKind::TimedOut.into());
                            }
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => {
                            return Err(io::ErrorKind::BrokenPipe.into())
                        }
                    }
                },
            };
            // Fault sites: a stall delays this reply (slow network), a
            // write fault kills the connection as a peer reset would —
            // the frames it owed are the client's to retry.
            #[cfg(feature = "fault-injection")]
            if let Some(faults) = &state.faults {
                if let Some(FaultAction::Stall(d)) = faults.check(Site::ConnStall) {
                    std::thread::sleep(d);
                }
                if faults.check(Site::ConnWrite).is_some() {
                    let _ = w.shutdown(std::net::Shutdown::Both);
                    return Err(faults.injected_error(Site::ConnWrite));
                }
            }
            // Probe replies with observability on pay one clock read
            // either side of the socket write; the admission stamp then
            // closes the frame-total span. `admitted` is `Some` only for
            // probe frames, and only when obs is configured.
            match (&state.obs, admitted) {
                (Some(obs), Some(t0)) => {
                    let w0 = Instant::now();
                    write_all_retry(state, &mut w, &frame, &mut clock)?;
                    obs.write.record(w0.elapsed().as_nanos() as u64);
                    obs.frame_total.record(t0.elapsed().as_nanos() as u64);
                }
                _ => write_all_retry(state, &mut w, &frame, &mut clock)?,
            }
        }
    })();
    let _ = result;
    // Tell the reader; a send failure path follows for anything still
    // buffered (workers' sends to dropped receivers are ignored).
    dead.store(true, Ordering::Release);
}

/// Writes a whole frame, riding out write timeouts (the write half
/// carries a short timeout so a stalled client is re-checked against the
/// drain deadline instead of blocking shutdown forever).
fn write_all_retry(
    state: &State,
    w: &mut TcpStream,
    frame: &[u8],
    clock: &mut DrainClock,
) -> io::Result<()> {
    let mut at = 0;
    while at < frame.len() {
        match w.write(&frame[at..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(k) => at += k,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if clock.expired(state) {
                    return Err(io::ErrorKind::TimedOut.into());
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads one request frame body; `Ok(None)` means the connection is done
/// (clean EOF, server drain, or a dead writer).
fn read_request_frame(
    r: &mut TcpStream,
    state: &State,
    dead: &AtomicBool,
) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match fill(r, &mut len, state, dead)? {
        Fill::Full => {}
        Fill::CleanEof | Fill::Drain => return Ok(None),
    }
    let body_len = u32::from_le_bytes(len) as usize;
    if body_len > proto::MAX_REQ_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request frame exceeds the protocol cap",
        ));
    }
    let mut body = vec![0u8; body_len];
    match fill(r, &mut body, state, dead)? {
        Fill::Full => Ok(Some(body)),
        Fill::CleanEof => Err(io::ErrorKind::UnexpectedEof.into()),
        Fill::Drain => Ok(None),
    }
}

/// Fills `buf`, retrying read timeouts; each timeout tick polls the
/// draining flag (so drain is observed mid-frame without losing framing)
/// and the writer's death (so a half-dead connection never keeps
/// reading).
fn fill(r: &mut TcpStream, buf: &mut [u8], state: &State, dead: &AtomicBool) -> io::Result<Fill> {
    let mut at = 0;
    while at < buf.len() {
        if state.draining.load(Ordering::Acquire) || dead.load(Ordering::Acquire) {
            return Ok(Fill::Drain);
        }
        match r.read(&mut buf[at..]) {
            Ok(0) => {
                return if at == 0 {
                    Ok(Fill::CleanEof)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(k) => at += k,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Fill::Full)
}

// ---------------------------------------------------------------------
// Probe workers
// ---------------------------------------------------------------------

fn worker_loop(state: &State) {
    loop {
        let batch = {
            let mut q = state.queue.lock().expect("probe queue");
            loop {
                if !q.jobs.is_empty() {
                    // Jobs outrank drain: an accepted frame is owed its
                    // real answer, so workers exit only on empty+drain.
                    break;
                }
                if state.draining.load(Ordering::Acquire) {
                    return;
                }
                q = state.ready.wait(q).expect("probe queue wait");
            }
            // Adaptive micro-batch: drain until the queue is empty or
            // the lane budget is met. A single over-budget job still
            // runs alone (lookup_batch blocks internally).
            let mut lanes = 0usize;
            let mut batch = Vec::new();
            while let Some(front) = q.jobs.front() {
                if !batch.is_empty() && lanes + front.cells.len() > state.batch_lanes {
                    break;
                }
                let job = q.jobs.pop_front().expect("front checked");
                lanes += job.cells.len();
                q.lanes -= job.cells.len();
                batch.push(job);
                if lanes >= state.batch_lanes {
                    break;
                }
            }
            batch
        };
        // Queue-wait closes at dequeue, recorded outside the lock (the
        // stamps are already taken; recording is two relaxed adds each).
        if let Some(obs) = &state.obs {
            let now = Instant::now();
            for job in &batch {
                if let Some(t0) = job.admitted {
                    obs.queue_wait
                        .record(now.saturating_duration_since(t0).as_nanos() as u64);
                }
            }
        }
        if let Some(delay) = state.batch_delay {
            std::thread::sleep(delay);
        }
        process_batch(state, batch);
    }
}

/// Answers one micro-batch against a single pinned `(snapshot, epoch)`.
///
/// The compute half runs under `catch_unwind`: a panic — a bug in the
/// probe path, or an injected [`Site::WorkerPanic`] — poisons **this
/// batch only**. Its frames are answered with typed `INTERNAL` replies
/// (clients see a retryable status, connections stay up), the
/// `panics_contained` counter bumps, and the worker thread survives to
/// take the next batch. `answered` counts either way, so the
/// `accepted = answered + shed` invariant holds through panics.
fn process_batch(state: &State, batch: Vec<Job>) {
    let computed = catch_unwind(AssertUnwindSafe(|| compute_replies(state, &batch)));
    let total: usize = batch.iter().map(|j| j.cells.len()).sum();
    let replies: Vec<Reply> = match computed {
        Ok(ok) => ok,
        Err(_) => {
            state.panics_contained.fetch_add(1, Ordering::Relaxed);
            let epoch = state.store.epoch();
            (0..batch.len())
                .map(|_| Reply {
                    status: proto::STATUS_INTERNAL,
                    epoch,
                    n: 0,
                    payload: Vec::new(),
                })
                .collect()
        }
    };
    debug_assert_eq!(replies.len(), batch.len());
    state
        .drained_lanes
        .fetch_add(total as u64, Ordering::Relaxed);
    for (job, reply) in batch.into_iter().zip(replies) {
        // Release the connection's quota lanes at reply production —
        // whether the reply is real or a contained-panic INTERNAL, the
        // work is out of the pipeline either way.
        job.quota
            .fetch_sub(job.cells.len() as u64, Ordering::AcqRel);
        // Counted at production: the reply exists whether or not the
        // connection survives to carry it.
        state.answered.fetch_add(1, Ordering::Relaxed);
        // A send failure means the connection died while we probed;
        // nothing to deliver to.
        let _ = job.reply.send(reply);
    }
}

/// The panic-isolated half of [`process_batch`]: one pinned
/// `(snapshot, epoch)` pair, one `lookup_batch` walk, one [`Reply`] per
/// job (in batch order). Touches only monotonic stats counters, so
/// unwinding out of here leaves no state poisoned.
fn compute_replies(state: &State, batch: &[Job]) -> Vec<Reply> {
    #[cfg(feature = "fault-injection")]
    if let Some(faults) = &state.faults {
        if faults.check(Site::WorkerPanic).is_some() {
            panic!("injected worker panic (contained; this batch answers INTERNAL)");
        }
    }
    let (snap, epoch) = state.store.current();
    let view = snap.view();
    let total: usize = batch.iter().map(|j| j.cells.len()).sum();
    // A single-job batch (the common shape when one frame fills the
    // lane budget by itself) borrows its cells straight from the job;
    // only genuinely widened batches pay the gather copy.
    let mut cells_buf = Vec::new();
    let cells: &[CellId] = if batch.len() == 1 {
        &batch[0].cells
    } else {
        cells_buf.reserve(total);
        for job in batch {
            cells_buf.extend_from_slice(&job.cells);
        }
        &cells_buf
    };
    // Only the cache-off arm resolves lanes out of `probes`; with the
    // cache on every lane lands in the span table instead, so the
    // allocation (and its memset) is skipped entirely.
    let mut probes: Vec<Probe> = Vec::new();
    // With the cache on, every lane lands in the span table — hits copy
    // their ref lists straight into the batch arena under the shard
    // read-lock, misses append theirs after the walk + fill. With it
    // off, both stay empty and lanes resolve lazily out of `probes` at
    // encode time. The arena holds **packed wire words** (the cache's
    // storage form), so an approximate hit reaches the reply payload by
    // copy alone; spans store `len + 1` so `(0, 0)` can mark a lane
    // whose miss has not been filled yet.
    let mut arena: Vec<u32> = Vec::new();
    let mut spans: Vec<(usize, usize)> = Vec::new();
    match &state.cache {
        Some(cache) => {
            // Read-through at the pinned epoch: consult the cache per
            // leaf, then walk **only the misses** — with termination
            // depths, so each fill keys on the resolved trie cell. An
            // entry filled under an older epoch never matches, so a
            // concurrent hot-swap can only cost misses, never staleness.
            arena.reserve(cells.len() * 2);
            spans.reserve(cells.len());
            let hits = cache.get_batch(cells, epoch, &mut arena, &mut spans);
            let miss_idx: Vec<usize> = (0..cells.len()).filter(|&i| spans[i].1 == 0).collect();
            cache.record(hits, miss_idx.len() as u64);
            let miss_cells: Vec<CellId> = miss_idx.iter().map(|&i| cells[i]).collect();
            let mut miss_probes = vec![Probe::Miss; miss_cells.len()];
            let mut depths = vec![0u8; miss_cells.len()];
            if !miss_cells.is_empty() {
                match &state.obs {
                    Some(obs) => {
                        let t0 = Instant::now();
                        view.probe_batch_depths(&miss_cells, &mut miss_probes, &mut depths);
                        obs.walk.record(t0.elapsed().as_nanos() as u64);
                        for &d in &depths {
                            obs.probe_depth.record(u64::from(d));
                        }
                    }
                    None => view.probe_batch_depths(&miss_cells, &mut miss_probes, &mut depths),
                }
            }
            for (k, &i) in miss_idx.iter().enumerate() {
                // Misses are cached even when empty — a hot cell with
                // no polygons is still hot. Packing to the wire form
                // happens once, here; hits never pay it again.
                let start = arena.len();
                arena.extend(
                    view.resolve_refs(miss_probes[k])
                        .map(|(id, hit)| proto::encode_ref(id, hit)),
                );
                cache.insert(cells[i], depths[k], epoch, &arena[start..]);
                spans[i] = (start, arena.len() - start + 1);
            }
            if let Some(obs) = &state.obs {
                obs.batch_lanes.record(total as u64);
                if total > 0 {
                    let hits = (cells.len() - miss_cells.len()) as u64;
                    obs.cache_hit_pct.record(hits * 100 / total as u64);
                }
            }
        }
        None => match &state.obs {
            Some(obs) => {
                // The depth-reporting walk mirrors `lookup_batch` level
                // by level (same memory-level parallelism); per-cell
                // depths feed the probe-depth histogram, the walk span
                // closes at batch granularity, and the batch width is
                // recorded here because this is the one place the
                // widened batch exists.
                probes.resize(cells.len(), Probe::Miss);
                let mut depths = vec![0u8; cells.len()];
                let t0 = Instant::now();
                view.probe_batch_depths(cells, &mut probes, &mut depths);
                obs.walk.record(t0.elapsed().as_nanos() as u64);
                obs.batch_lanes.record(total as u64);
                for &d in &depths {
                    obs.probe_depth.record(u64::from(d));
                }
            }
            None => {
                probes.resize(cells.len(), Probe::Miss);
                view.probe_batch(cells, &mut probes)
            }
        },
    }
    state.probes.fetch_add(total as u64, Ordering::Relaxed);
    state.batches.fetch_add(1, Ordering::Relaxed);

    let mut replies = Vec::with_capacity(batch.len());
    let mut refine_ns = 0u64;
    let mut at = 0usize;
    for job in batch {
        let n = job.cells.len();
        let reply = if job.exact && state.refiner.is_none() {
            Reply {
                status: proto::STATUS_UNSUPPORTED,
                epoch,
                n: 0,
                payload: Vec::new(),
            }
        } else {
            let refine_t0 = match &state.obs {
                Some(_) if job.exact => Some(Instant::now()),
                _ => None,
            };
            let mut payload = Vec::with_capacity(n * 8);
            for i in 0..n {
                let refine = if job.exact {
                    Some((
                        state.refiner.as_ref().expect("checked above"),
                        job.coords[i],
                    ))
                } else {
                    None
                };
                // A cached lane encodes straight from its arena span —
                // exact mode still refines against the cached
                // candidates, so the cache is refinement-agnostic.
                match spans.get(at + i) {
                    Some(&(start, len1)) if len1 > 0 => {
                        encode_point_words(&mut payload, &arena[start..start + len1 - 1], refine)
                    }
                    _ => encode_point_refs(&mut payload, view.resolve_refs(probes[at + i]), refine),
                }
            }
            if let Some(t0) = refine_t0 {
                refine_ns += t0.elapsed().as_nanos() as u64;
            }
            Reply {
                status: proto::STATUS_OK,
                epoch,
                n: n as u32,
                payload,
            }
        };
        at += n;
        replies.push(reply);
    }
    if refine_ns > 0 {
        if let Some(obs) = &state.obs {
            obs.refine.record(refine_ns);
        }
    }
    replies
}

/// Appends one point's reply section — the u32 count then one encoded
/// ref word per reported polygon — from whatever yields the resolved
/// `(id, interior)` pairs (a cached list or the live trie resolution).
/// With `refine` set (exact mode), true hits skip the point-in-polygon
/// test — the paper's true-hit filtering, carried onto the wire — and
/// candidates that fail it are dropped.
/// Encodes one point's answer from already-packed wire words (an arena
/// span). The approximate path is the reason the arena is packed: a
/// count word and a bulk byte copy, no per-ref work at all. Exact mode
/// must look inside each ref to refine it, so it unpacks and shares
/// [`encode_point_refs`].
fn encode_point_words(payload: &mut Vec<u8>, words: &[u32], refine: Option<(&Refiner, Coord)>) {
    if refine.is_some() {
        return encode_point_refs(payload, words.iter().map(|&w| proto::decode_ref(w)), refine);
    }
    payload.reserve(4 + words.len() * 4);
    payload.extend_from_slice(&(words.len() as u32).to_le_bytes());
    for &w in words {
        payload.extend_from_slice(&w.to_le_bytes());
    }
}

fn encode_point_refs(
    payload: &mut Vec<u8>,
    refs: impl Iterator<Item = (u32, bool)>,
    refine: Option<(&Refiner, Coord)>,
) {
    let count_at = payload.len();
    payload.extend_from_slice(&0u32.to_le_bytes());
    let mut count = 0u32;
    match refine {
        Some((refiner, coord)) => {
            for (id, interior) in refs {
                if interior || refiner.contains(id, coord) {
                    payload.extend_from_slice(&proto::encode_ref(id, true).to_le_bytes());
                    count += 1;
                }
            }
        }
        None => {
            for (id, hit) in refs {
                payload.extend_from_slice(&proto::encode_ref(id, hit).to_le_bytes());
                count += 1;
            }
        }
    }
    payload[count_at..count_at + 4].copy_from_slice(&count.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: a panic under the queue lock poisons the mutex, and
    /// the retry-hint path used to mask that as `lanes = 0` — an
    /// overloaded server advertising an empty queue. The hint must see
    /// the real occupancy through the poison.
    #[test]
    fn retry_hint_sees_real_queue_depth_through_lock_poison() {
        let queue = Arc::new(Mutex::new(Queue {
            jobs: VecDeque::new(),
            lanes: 777,
        }));
        let q = Arc::clone(&queue);
        let _ = std::thread::spawn(move || {
            let _guard = q.lock().expect("first lock of a fresh mutex");
            panic!("poison the queue lock (deliberate)");
        })
        .join();
        assert!(queue.lock().is_err(), "the lock must actually be poisoned");
        assert_eq!(
            queued_lanes(&queue),
            777,
            "poison must not masquerade as an empty queue"
        );
    }
}
