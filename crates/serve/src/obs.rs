//! Pipeline observability: the per-stage histogram set, the sampled
//! trace ring, and the shared Prometheus rendering used by the server's
//! and the router's `/metrics` pages.
//!
//! Everything here is **pay-only-when-enabled** (the same philosophy as
//! fault injection): [`crate::ServeConfig::obs`] is `None` by default,
//! the server keeps a `None` and takes zero `Instant::now()` calls on
//! the hot path. With observability on, the per-value cost is two
//! relaxed `fetch_add`s per histogram record (see `act_obs::Histogram`)
//! plus one monotonic clock read per stage boundary.

use crate::protocol as proto;
use act_obs::{Histogram, PromText, TraceRing};
use std::sync::Arc;

/// Observability knobs. `Default` keeps a 4096-event trace ring and
/// samples one probe frame in 64.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Bounded trace ring capacity (older events are evicted).
    pub trace_capacity: usize,
    /// Sample one probe admission in this many (0 disables admission
    /// sampling entirely, 1 samples every frame). Lifecycle events
    /// (swap, delta apply, quarantine, shed, breaker transitions) are
    /// always recorded — they are rare and individually meaningful.
    pub trace_sample_every: u64,
    /// Seed offsetting which 1-in-N admissions sample (lets a fleet's
    /// workers sample different request phases).
    pub trace_seed: u64,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            trace_capacity: 4096,
            trace_sample_every: 64,
            trace_seed: 0,
        }
    }
}

/// The serving pipeline's stage histograms plus the trace ring. One per
/// server (workers and connections share it through the server state's
/// `Arc`); merged across shards by the router via the wire section.
#[derive(Debug)]
pub struct PipelineObs {
    /// Admission → worker dequeue, nanoseconds per probe frame.
    pub queue_wait: Histogram,
    /// Batched trie walk, nanoseconds per micro-batch.
    pub walk: Histogram,
    /// Exact-mode refinement, nanoseconds per micro-batch that refined.
    pub refine: Histogram,
    /// Socket write (flush) of one probe reply, nanoseconds.
    pub write: Histogram,
    /// Admission → reply flushed, nanoseconds per probe frame.
    pub frame_total: Histogram,
    /// Lanes per executed micro-batch.
    pub batch_lanes: Histogram,
    /// Trie node accesses per probed cell (0–7).
    pub probe_depth: Histogram,
    /// Hot-cell cache hit rate per micro-batch, in whole percent
    /// (0–100). Recorded only on batches that consulted the cache.
    pub cache_hit_pct: Histogram,
    /// Sampled structured trace events (`Arc` so the snapshot watcher
    /// can record swap/delta/quarantine events into the same ring).
    pub trace: Arc<TraceRing>,
}

impl PipelineObs {
    /// An empty pipeline recorder per `config`.
    pub fn new(config: &ObsConfig) -> PipelineObs {
        PipelineObs {
            queue_wait: Histogram::new(),
            walk: Histogram::new(),
            refine: Histogram::new(),
            write: Histogram::new(),
            frame_total: Histogram::new(),
            batch_lanes: Histogram::new(),
            probe_depth: Histogram::new(),
            cache_hit_pct: Histogram::new(),
            trace: Arc::new(TraceRing::new(
                config.trace_capacity,
                config.trace_sample_every,
                config.trace_seed,
            )),
        }
    }

    /// Snapshots every stage in wire order (the flagged-STATS section).
    pub fn stage_histograms(&self) -> Vec<proto::StageHistogram> {
        [
            (proto::STAGE_QUEUE_WAIT, &self.queue_wait),
            (proto::STAGE_WALK, &self.walk),
            (proto::STAGE_REFINE, &self.refine),
            (proto::STAGE_WRITE, &self.write),
            (proto::STAGE_FRAME_TOTAL, &self.frame_total),
            (proto::STAGE_BATCH_LANES, &self.batch_lanes),
            (proto::STAGE_PROBE_DEPTH, &self.probe_depth),
            (proto::STAGE_CACHE_HIT_PCT, &self.cache_hit_pct),
        ]
        .into_iter()
        .map(|(stage, h)| proto::StageHistogram {
            stage,
            hist: h.snapshot(),
        })
        .collect()
    }
}

/// Renders one peer's counter block into `page` under `labels` (the
/// router adds `shard` labels; a standalone server passes none).
pub(crate) fn render_counters(
    page: &mut PromText,
    labels: &[(&str, &str)],
    epoch: u32,
    c: &proto::CounterBlock,
) {
    page.gauge(
        "act_epoch",
        "Serving snapshot epoch (1 + successful publishes).",
        labels,
        f64::from(epoch),
    );
    for (name, help, v) in [
        ("act_probes_total", "Probe points answered.", c.probes),
        (
            "act_accepted_total",
            "Well-formed frames taken in.",
            c.accepted,
        ),
        (
            "act_answered_total",
            "Frames answered with a real reply.",
            c.answered,
        ),
        ("act_shed_total", "Probe frames answered LOADSHED.", c.shed),
        (
            "act_bad_frames_total",
            "Malformed frames answered BAD_REQUEST.",
            c.bad_frames,
        ),
        (
            "act_busy_total",
            "Connections refused BUSY at the accept gate.",
            c.busy,
        ),
        (
            "act_batches_total",
            "Probe micro-batches executed.",
            c.batches,
        ),
        ("act_swaps_total", "Successful index publishes.", c.swaps),
        (
            "act_delta_applies_total",
            "Delta files applied onto the live index.",
            c.delta_applies,
        ),
        (
            "act_watch_errors_total",
            "Transient snapshot-watcher IO errors.",
            c.watch_errors,
        ),
        (
            "act_quarantines_total",
            "Delta files quarantined by the watcher.",
            c.quarantines,
        ),
        (
            "act_panics_contained_total",
            "Worker panics contained to one batch.",
            c.panics_contained,
        ),
        (
            "act_cache_hits_total",
            "Probed cells answered from the hot-cell result cache.",
            c.cache_hits,
        ),
        (
            "act_cache_misses_total",
            "Probed cells that missed the hot-cell cache and walked the trie.",
            c.cache_misses,
        ),
        (
            "act_quota_sheds_total",
            "Probe frames shed by the per-client fairness quota.",
            c.quota_sheds,
        ),
    ] {
        page.counter(name, help, labels, v);
    }
    page.gauge(
        "act_queue_high_water_lanes",
        "Highest queue occupancy since start, in lanes.",
        labels,
        c.queue_high_water_lanes as f64,
    );
    page.gauge(
        "act_window_high_water_lanes",
        "Highest queue occupancy since the last flagged STATS read, in lanes.",
        labels,
        c.window_high_water_lanes as f64,
    );
}

/// Renders stage histograms into `page` under `labels`. Time stages
/// (nanosecond recordings) land in one `act_stage_seconds` family keyed
/// by a `stage` label; the two value histograms get their own families
/// in their natural units.
pub(crate) fn render_histograms(
    page: &mut PromText,
    labels: &[(&str, &str)],
    hists: &[proto::StageHistogram],
) {
    for h in hists {
        let stage = proto::stage_name(h.stage);
        match h.stage {
            proto::STAGE_BATCH_LANES => page.histogram(
                "act_batch_lanes",
                "Lanes (points) per executed micro-batch.",
                labels,
                &h.hist,
                1.0,
            ),
            proto::STAGE_PROBE_DEPTH => page.histogram(
                "act_probe_depth",
                "Trie node accesses per probed cell.",
                labels,
                &h.hist,
                1.0,
            ),
            proto::STAGE_CACHE_HIT_PCT => page.histogram(
                "act_cache_hit_pct",
                "Hot-cell cache hit rate per micro-batch, percent.",
                labels,
                &h.hist,
                1.0,
            ),
            _ => {
                let mut with_stage: Vec<(&str, &str)> = labels.to_vec();
                with_stage.push(("stage", stage));
                page.histogram(
                    "act_stage_seconds",
                    "Pipeline stage wall time, seconds.",
                    &with_stage,
                    &h.hist,
                    1e-9,
                );
            }
        }
    }
}

/// Renders trace-ring meta counters (the events themselves are the DUMP
/// op's payload, not scrape material).
pub(crate) fn render_trace_meta(page: &mut PromText, labels: &[(&str, &str)], trace: &TraceRing) {
    page.counter(
        "act_trace_events_total",
        "Trace events recorded (ring may have evicted older ones).",
        labels,
        trace.recorded(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_histograms_cover_every_stage_in_order() {
        let obs = PipelineObs::new(&ObsConfig::default());
        obs.walk.record(1_000);
        obs.probe_depth.record(3);
        let hists = obs.stage_histograms();
        let stages: Vec<u8> = hists.iter().map(|h| h.stage).collect();
        assert_eq!(stages, (0..proto::STAGE_COUNT as u8).collect::<Vec<_>>());
        assert_eq!(hists[proto::STAGE_WALK as usize].hist.count(), 1);
        assert_eq!(hists[proto::STAGE_QUEUE_WAIT as usize].hist.count(), 0);
    }

    #[test]
    fn rendering_produces_expected_families() {
        let obs = PipelineObs::new(&ObsConfig::default());
        obs.queue_wait.record(50_000);
        obs.batch_lanes.record(256);
        obs.cache_hit_pct.record(92);
        let c = proto::CounterBlock {
            probes: 9,
            window_high_water_lanes: 7,
            cache_hits: 23,
            cache_misses: 2,
            quota_sheds: 1,
            ..Default::default()
        };
        let mut page = PromText::new();
        render_counters(&mut page, &[], 3, &c);
        render_histograms(&mut page, &[], &obs.stage_histograms());
        render_trace_meta(&mut page, &[], &obs.trace);
        let text = page.finish();
        assert!(text.contains("act_probes_total 9"));
        assert!(text.contains("act_epoch 3"));
        assert!(text.contains("act_window_high_water_lanes 7"));
        assert!(text.contains("act_stage_seconds_bucket{stage=\"queue_wait\""));
        assert!(text.contains("act_batch_lanes_count 1"));
        assert!(text.contains("act_cache_hits_total 23"));
        assert!(text.contains("act_cache_misses_total 2"));
        assert!(text.contains("act_quota_sheds_total 1"));
        assert!(text.contains("act_cache_hit_pct_count 1"));
        assert!(text.contains("act_trace_events_total 0"));
        // One header per family even with seven stages sharing one.
        assert_eq!(
            text.matches("# TYPE act_stage_seconds histogram").count(),
            1
        );
    }
}
