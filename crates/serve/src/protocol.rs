//! The wire protocol: small, length-prefixed, little-endian binary frames.
//!
//! Everything on the wire is little-endian. A **frame** is a `u32` body
//! length followed by the body; request and response bodies carry a
//! fixed small header and an op-specific payload:
//!
//! ```text
//! request frame
//!   u32  body_len
//!   u8   op          1 = PROBE, 2 = PING, 3 = STATS
//!   u8   flags       bit 0: EXACT (refine candidates via the server's
//!                    polygon set; requires the server to hold a Refiner)
//!   u16  reserved    must be 0
//!   u32  n           number of points (PROBE) or 0 (PING/STATS)
//!   then n × { f64 lng, f64 lat }                       (PROBE only)
//!
//! response frame
//!   u32  body_len
//!   u8   op          echoes the request op (0 for a BUSY accept reject)
//!   u8   status      0 = OK, 1 = BAD_REQUEST, 2 = UNSUPPORTED,
//!                    3 = INTERNAL, 4 = LOADSHED, 5 = BUSY
//!   u16  reserved    0
//!   u32  epoch       the snapshot epoch that answered (bumps on hot-swap)
//!   u32  n           number of per-point entries (PROBE) or 0 otherwise
//!   PROBE: n × { u32 count, count × u32 ref }
//!          ref = (polygon_id << 1) | hit_bit
//!            approx mode: hit_bit = is_true_hit (candidates ride along
//!            with bit 0 — the paper's ε-bounded approximate answer)
//!            exact mode:  only actual members are listed, hit_bit = 1
//!   PING / STATS: a counter block (see [`CounterBlock`])
//!   LOADSHED / BUSY: optionally a u32 retry_after_ms hint (n stays 0)
//! ```
//!
//! A probe frame carries at most [`MAX_POINTS`] points, which bounds
//! every allocation a frame can force on the server; oversized or
//! malformed frames get a `BAD_REQUEST` response and the connection is
//! closed. `u32 n` on the response always equals the request's `n`, so a
//! client can correlate by position; requests on one connection are
//! answered in order.
//!
//! ## Versioning
//!
//! [`PROTOCOL_VERSION`] is 2. The frame and header layouts are unchanged
//! from version 1; version 2 adds payload, never reshapes it, so the bump
//! is compatible in both directions:
//!
//! * The PING/STATS counter block grew from ten to thirteen `u64` words
//!   (`watch_errors`, `quarantines`, `panics_contained`). A version-2
//!   client still accepts the 80-byte version-1 block and reads the
//!   missing counters as zero ([`decode_counters`]).
//! * `LOADSHED`/`BUSY` replies may now carry a 4-byte `retry_after_ms`
//!   payload. Version-1 replies carried none; [`decode_retry_after`]
//!   maps an empty payload to "no hint". Version-1 clients that ignore
//!   reject payloads (the documented contract) are unaffected.
//!
//! ## Admission-control statuses
//!
//! * `LOADSHED` (probe only, `n = 0`): the server's bounded probe queue
//!   was full, so the frame was answered immediately instead of queuing.
//!   The connection **stays open** — the client may retry or back off;
//!   a shed frame is never silently dropped. The payload, when present,
//!   is a `u32 retry_after_ms` hint derived from the live queue depth
//!   and the measured drain rate ([`suggest_retry_after_ms`]).
//! * `BUSY` (op `0`, sent straight from the accept loop, then close):
//!   the server is at its connection cap and refused this connection
//!   before a reader thread was even spawned. Carries the same optional
//!   `retry_after_ms` payload.

use geom::Coord;
use std::io::{self, Read, Write};

/// Wire protocol version implemented by this build (see the module docs'
/// "Versioning" section for what changed and why it is compatible).
pub const PROTOCOL_VERSION: u32 = 2;

/// Probe a batch of coordinates.
pub const OP_PROBE: u8 = 1;
/// Liveness / epoch / counter check.
pub const OP_PING: u8 = 2;
/// Counter/metrics snapshot (same payload as PING; a distinct op so
/// monitoring traffic is distinguishable from liveness checks).
pub const OP_STATS: u8 = 3;

/// Request flag bit 0: refine candidate hits to exact membership.
pub const FLAG_EXACT: u8 = 1;

/// Response status codes.
pub const STATUS_OK: u8 = 0;
/// The frame was structurally invalid (also closes the connection).
pub const STATUS_BAD_REQUEST: u8 = 1;
/// The request needs a capability the server lacks (exact mode without
/// a refiner).
pub const STATUS_UNSUPPORTED: u8 = 2;
/// The server failed internally while answering.
pub const STATUS_INTERNAL: u8 = 3;
/// The probe queue was full; the frame was answered immediately instead
/// of queuing (the connection stays open — retry or back off).
pub const STATUS_LOADSHED: u8 = 4;
/// The server is at its connection cap; sent once on accept, then the
/// connection is closed.
pub const STATUS_BUSY: u8 = 5;

/// Human-readable name of a status code (for logs and error displays).
pub fn status_name(status: u8) -> &'static str {
    match status {
        STATUS_OK => "OK",
        STATUS_BAD_REQUEST => "BAD_REQUEST",
        STATUS_UNSUPPORTED => "UNSUPPORTED",
        STATUS_INTERNAL => "INTERNAL",
        STATUS_LOADSHED => "LOADSHED",
        STATUS_BUSY => "BUSY",
        _ => "UNKNOWN",
    }
}

/// Hard cap on points per probe frame (bounds per-frame allocations).
pub const MAX_POINTS: usize = 65_536;
/// Request body header: op + flags + reserved + n.
pub const REQ_HEADER_LEN: usize = 8;
/// Response body header: op + status + reserved + epoch + n.
pub const RESP_HEADER_LEN: usize = 12;
/// Largest acceptable request body (a full probe frame).
pub const MAX_REQ_BODY: usize = REQ_HEADER_LEN + MAX_POINTS * 16;

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Probe `coords`; `exact` selects refine-to-membership mode.
    Probe {
        /// The query points (x = lng, y = lat degrees).
        coords: Vec<Coord>,
        /// Refine candidates via the server's polygon set.
        exact: bool,
    },
    /// Liveness check; the response carries epoch + the counter block.
    Ping,
    /// Counter/metrics snapshot; same response shape as [`Request::Ping`].
    Stats,
}

/// One point's answer: `(polygon id, hit bit)` pairs (see the module
/// docs for the bit's meaning per mode).
pub type PointRefs = Vec<(u32, bool)>;

/// A decoded probe response.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeReply {
    /// Snapshot epoch that answered (bumps on hot-swap).
    pub epoch: u32,
    /// Per-point reference lists, aligned with the request's coords.
    pub refs: Vec<PointRefs>,
}

/// A decoded ping response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PingReply {
    /// Snapshot epoch currently serving.
    pub epoch: u32,
    /// Total probe points answered since the server started
    /// (`counters.probes`, kept as a field for convenience).
    pub probes_served: u64,
    /// The full serving counter block.
    pub counters: CounterBlock,
}

/// A decoded stats response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsReply {
    /// Snapshot epoch currently serving.
    pub epoch: u32,
    /// The serving counter block.
    pub counters: CounterBlock,
}

/// The server's aggregate serving counters, as carried in PING and STATS
/// payloads: thirteen little-endian `u64` words, in field order.
///
/// Reconciliation invariant (after a graceful drain, with all replies
/// delivered): `accepted == answered + shed` — every accepted frame got
/// exactly one reply, and a shed frame is always answered `LOADSHED`,
/// never silently dropped. The invariant holds through worker panics:
/// a poisoned batch answers its frames `INTERNAL`, which still counts
/// toward `answered`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterBlock {
    /// Probe points answered (sum of lanes over answered probe frames).
    pub probes: u64,
    /// Well-formed frames taken in (probe, ping, stats — shed included).
    pub accepted: u64,
    /// Frames answered with a real (non-LOADSHED) reply.
    pub answered: u64,
    /// Probe frames answered `LOADSHED` because the queue was full.
    pub shed: u64,
    /// Malformed frames answered `BAD_REQUEST` (connection then closed).
    pub bad_frames: u64,
    /// Connections refused with `BUSY` at the accept gate.
    pub busy: u64,
    /// Probe micro-batches executed (`probes / batches` = mean width).
    pub batches: u64,
    /// Successful index publishes (`epoch - 1`): full snapshot
    /// hot-swaps plus delta applies.
    pub swaps: u64,
    /// Highest queue occupancy observed, in lanes (points). Bounded by
    /// the server's configured queue depth.
    pub queue_high_water_lanes: u64,
    /// Delta files applied onto the live index (a subset of `swaps` —
    /// the updates that arrived without remapping the base snapshot).
    pub delta_applies: u64,
    /// Transient IO errors hit by the snapshot watcher while statting or
    /// reading (each one also widens the watcher's retry backoff; they
    /// are no longer silently treated as "no change").
    pub watch_errors: u64,
    /// Corrupt or wrong-chain delta files the watcher renamed to
    /// `*.quarantine` and skipped, keeping the current epoch serving.
    pub quarantines: u64,
    /// Worker-thread panics contained by `catch_unwind`: each one
    /// poisoned a single batch (its frames were answered `INTERNAL`)
    /// instead of the process.
    pub panics_contained: u64,
}

impl CounterBlock {
    /// Folds another block into this one for a fleet-wide view (the
    /// router's merged PING/STATS reply). Every counter is a monotonic
    /// total and sums, except `queue_high_water_lanes`, which is a
    /// high-water mark — the merged value is the worst shard's.
    pub fn merge(&mut self, other: &CounterBlock) {
        self.probes += other.probes;
        self.accepted += other.accepted;
        self.answered += other.answered;
        self.shed += other.shed;
        self.bad_frames += other.bad_frames;
        self.busy += other.busy;
        self.batches += other.batches;
        self.swaps += other.swaps;
        self.queue_high_water_lanes = self
            .queue_high_water_lanes
            .max(other.queue_high_water_lanes);
        self.delta_applies += other.delta_applies;
        self.watch_errors += other.watch_errors;
        self.quarantines += other.quarantines;
        self.panics_contained += other.panics_contained;
    }
}

/// Canonicalizes one point's reference list after a scatter-gather
/// merge: sorted by polygon id, one entry per id, a true hit winning
/// over a candidate. Coarse indexed cells replicated across shards can
/// make two shards report the same polygon for one point; the answers
/// only ever differ in multiplicity, never in the hit bit, but the
/// true-hit-wins rule makes the merge safe even against a stale
/// replica mid-rolling-swap.
pub fn dedup_refs(refs: &mut PointRefs) {
    // Sort so `(id, true)` precedes `(id, false)`, then keep the first
    // entry of each id.
    refs.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
    refs.dedup_by_key(|r| r.0);
}

/// Serialized size of a [`CounterBlock`]: thirteen `u64` words
/// (protocol version 2).
pub const COUNTER_BLOCK_LEN: usize = 104;

/// Serialized size of a version-1 counter block: ten `u64` words.
/// Still accepted by [`decode_counters`], with the newer counters read
/// as zero.
pub const COUNTER_BLOCK_LEN_V1: usize = 80;

/// Serializes a counter block (PING/STATS response payload).
pub fn encode_counters(c: &CounterBlock) -> [u8; COUNTER_BLOCK_LEN] {
    let words = [
        c.probes,
        c.accepted,
        c.answered,
        c.shed,
        c.bad_frames,
        c.busy,
        c.batches,
        c.swaps,
        c.queue_high_water_lanes,
        c.delta_applies,
        c.watch_errors,
        c.quarantines,
        c.panics_contained,
    ];
    let mut out = [0u8; COUNTER_BLOCK_LEN];
    for (slot, w) in out.chunks_exact_mut(8).zip(words) {
        slot.copy_from_slice(&w.to_le_bytes());
    }
    out
}

/// Decodes a counter block from a PING/STATS response payload.
///
/// Accepts the current thirteen-word block and, for compatibility with
/// version-1 servers, the old ten-word block (the three newer counters
/// decode as zero).
///
/// # Errors
/// A static description of the structural violation.
pub fn decode_counters(payload: &[u8]) -> Result<CounterBlock, &'static str> {
    if payload.len() != COUNTER_BLOCK_LEN && payload.len() != COUNTER_BLOCK_LEN_V1 {
        return Err("counter block is not ten (v1) or thirteen u64 words");
    }
    let v2 = payload.len() == COUNTER_BLOCK_LEN;
    Ok(CounterBlock {
        probes: u64_at(payload, 0),
        accepted: u64_at(payload, 8),
        answered: u64_at(payload, 16),
        shed: u64_at(payload, 24),
        bad_frames: u64_at(payload, 32),
        busy: u64_at(payload, 40),
        batches: u64_at(payload, 48),
        swaps: u64_at(payload, 56),
        queue_high_water_lanes: u64_at(payload, 64),
        delta_applies: u64_at(payload, 72),
        watch_errors: if v2 { u64_at(payload, 80) } else { 0 },
        quarantines: if v2 { u64_at(payload, 88) } else { 0 },
        panics_contained: if v2 { u64_at(payload, 96) } else { 0 },
    })
}

// ---------------------------------------------------------------------
// Retry-after hints (LOADSHED / BUSY payloads)
// ---------------------------------------------------------------------

/// Serialized size of a retry-after hint: one `u32`, milliseconds.
pub const RETRY_HINT_LEN: usize = 4;

/// Floor of any emitted retry hint, milliseconds.
pub const RETRY_AFTER_MIN_MS: u32 = 1;
/// Ceiling of any emitted retry hint, milliseconds.
pub const RETRY_AFTER_MAX_MS: u32 = 5_000;
/// Hint used before the server has measured a drain rate (or for BUSY
/// rejects, where no queue estimate applies).
pub const RETRY_AFTER_DEFAULT_MS: u32 = 25;

/// Serializes a `retry_after_ms` hint (LOADSHED/BUSY response payload).
pub fn encode_retry_hint(ms: u32) -> [u8; RETRY_HINT_LEN] {
    ms.to_le_bytes()
}

/// Extracts the optional `retry_after_ms` hint from a LOADSHED or BUSY
/// reply payload. An empty payload (a version-1 server) is `None`.
///
/// # Errors
/// A static description of the structural violation.
pub fn decode_retry_after(payload: &[u8]) -> Result<Option<u32>, &'static str> {
    match payload.len() {
        0 => Ok(None),
        RETRY_HINT_LEN => Ok(Some(u32_at(payload, 0))),
        _ => Err("reject payload is not an optional u32 retry hint"),
    }
}

/// Derives a `retry_after_ms` hint from the live queue occupancy and the
/// measured drain rate: the estimated time for the queue to drain, so a
/// client that sleeps the hint lands when capacity is plausible again.
/// Clamped to `[RETRY_AFTER_MIN_MS, RETRY_AFTER_MAX_MS]`; with no
/// measured rate yet the hint falls back to [`RETRY_AFTER_DEFAULT_MS`].
pub fn suggest_retry_after_ms(queued_lanes: u64, drain_lanes_per_sec: f64) -> u32 {
    if drain_lanes_per_sec <= 0.0 || !drain_lanes_per_sec.is_finite() {
        return RETRY_AFTER_DEFAULT_MS;
    }
    let ms = ((queued_lanes as f64 / drain_lanes_per_sec) * 1_000.0).ceil();
    // `as` saturates on overflow/non-finite, and the clamp bounds it.
    (ms as u64).clamp(RETRY_AFTER_MIN_MS as u64, RETRY_AFTER_MAX_MS as u64) as u32
}

/// Packs a polygon reference for the wire.
#[inline]
pub fn encode_ref(id: u32, hit: bool) -> u32 {
    (id << 1) | hit as u32
}

/// Unpacks a wire polygon reference.
#[inline]
pub fn decode_ref(word: u32) -> (u32, bool) {
    (word >> 1, word & 1 == 1)
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Renders a complete probe request frame.
pub fn encode_probe_request(coords: &[Coord], exact: bool) -> Vec<u8> {
    assert!(coords.len() <= MAX_POINTS, "probe frame over MAX_POINTS");
    let body_len = REQ_HEADER_LEN + coords.len() * 16;
    let mut out = Vec::with_capacity(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(OP_PROBE);
    out.push(if exact { FLAG_EXACT } else { 0 });
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&(coords.len() as u32).to_le_bytes());
    for c in coords {
        out.extend_from_slice(&c.x.to_le_bytes());
        out.extend_from_slice(&c.y.to_le_bytes());
    }
    out
}

/// Renders a complete ping request frame.
pub fn encode_ping_request() -> Vec<u8> {
    encode_headless_request(OP_PING)
}

/// Renders a complete stats request frame.
pub fn encode_stats_request() -> Vec<u8> {
    encode_headless_request(OP_STATS)
}

/// A request frame that is all header: op, zero flags, zero points.
fn encode_headless_request(op: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + REQ_HEADER_LEN);
    out.extend_from_slice(&(REQ_HEADER_LEN as u32).to_le_bytes());
    out.push(op);
    out.extend_from_slice(&[0, 0, 0]);
    out.extend_from_slice(&0u32.to_le_bytes());
    out
}

/// Renders a complete response frame around an already-encoded payload.
pub fn encode_response(op: u8, status: u8, epoch: u32, n: u32, payload: &[u8]) -> Vec<u8> {
    let body_len = RESP_HEADER_LEN + payload.len();
    let mut out = Vec::with_capacity(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(op);
    out.push(status);
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&n.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

#[inline]
fn u32_at(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().expect("4 bytes"))
}

#[inline]
fn u64_at(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().expect("8 bytes"))
}

#[inline]
fn f64_at(b: &[u8], at: usize) -> f64 {
    f64::from_le_bytes(b[at..at + 8].try_into().expect("8 bytes"))
}

/// Decodes a request body (the bytes after the `u32` length prefix).
///
/// # Errors
/// A static description of the structural violation; the server answers
/// `BAD_REQUEST` and closes the connection.
pub fn decode_request(body: &[u8]) -> Result<Request, &'static str> {
    if body.len() < REQ_HEADER_LEN {
        return Err("request body shorter than its header");
    }
    let (op, flags) = (body[0], body[1]);
    if body[2] != 0 || body[3] != 0 {
        return Err("nonzero reserved bytes");
    }
    let n = u32_at(body, 4) as usize;
    match op {
        OP_PROBE => {
            if flags & !FLAG_EXACT != 0 {
                return Err("unknown request flags");
            }
            if n > MAX_POINTS {
                return Err("probe frame exceeds MAX_POINTS");
            }
            if body.len() != REQ_HEADER_LEN + n * 16 {
                return Err("probe body length disagrees with point count");
            }
            let mut coords = Vec::with_capacity(n);
            for i in 0..n {
                let at = REQ_HEADER_LEN + i * 16;
                let (x, y) = (f64_at(body, at), f64_at(body, at + 8));
                if !x.is_finite() || !y.is_finite() {
                    return Err("non-finite coordinate");
                }
                coords.push(Coord::new(x, y));
            }
            Ok(Request::Probe {
                coords,
                exact: flags & FLAG_EXACT != 0,
            })
        }
        OP_PING | OP_STATS => {
            if flags != 0 {
                return Err("ping/stats take no flags");
            }
            if n != 0 || body.len() != REQ_HEADER_LEN {
                return Err("ping/stats carry no payload");
            }
            Ok(if op == OP_PING {
                Request::Ping
            } else {
                Request::Stats
            })
        }
        _ => Err("unknown op"),
    }
}

/// Response header fields, decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RespHeader {
    /// Echoed request op.
    pub op: u8,
    /// Status code (`STATUS_*`).
    pub status: u8,
    /// Answering snapshot epoch.
    pub epoch: u32,
    /// Per-point entry count.
    pub n: u32,
}

/// Decodes a response body into its header and payload slice.
///
/// # Errors
/// A static description of the structural violation.
pub fn decode_response(body: &[u8]) -> Result<(RespHeader, &[u8]), &'static str> {
    if body.len() < RESP_HEADER_LEN {
        return Err("response body shorter than its header");
    }
    if body[2] != 0 || body[3] != 0 {
        return Err("nonzero reserved bytes");
    }
    Ok((
        RespHeader {
            op: body[0],
            status: body[1],
            epoch: u32_at(body, 4),
            n: u32_at(body, 8),
        },
        &body[RESP_HEADER_LEN..],
    ))
}

/// Decodes a probe response payload into per-point reference lists.
///
/// # Errors
/// A static description of the structural violation.
pub fn decode_probe_payload(n: u32, payload: &[u8]) -> Result<Vec<PointRefs>, &'static str> {
    let mut refs = Vec::with_capacity(n as usize);
    let mut at = 0usize;
    for _ in 0..n {
        if at + 4 > payload.len() {
            return Err("probe payload truncated at a count");
        }
        let count = u32_at(payload, at) as usize;
        at += 4;
        if at + count * 4 > payload.len() {
            return Err("probe payload truncated inside a ref list");
        }
        let mut one = Vec::with_capacity(count);
        for k in 0..count {
            one.push(decode_ref(u32_at(payload, at + k * 4)));
        }
        at += count * 4;
        refs.push(one);
    }
    if at != payload.len() {
        return Err("trailing bytes after the last ref list");
    }
    Ok(refs)
}

// ---------------------------------------------------------------------
// Blocking frame I/O (client side and tests; the server uses its own
// shutdown-aware reader)
// ---------------------------------------------------------------------

/// Reads one length-prefixed frame body. `Ok(None)` is a clean EOF at a
/// frame boundary.
///
/// # Errors
/// I/O errors, truncation mid-frame, and frames above `max_body`.
pub fn read_frame(r: &mut impl Read, max_body: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match read_full(r, &mut len)? {
        0 => return Ok(None),
        4 => {}
        _ => return Err(io::ErrorKind::UnexpectedEof.into()),
    }
    let body_len = u32::from_le_bytes(len) as usize;
    if body_len > max_body {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds the protocol's size cap",
        ));
    }
    let mut body = vec![0u8; body_len];
    if read_full(r, &mut body)? != body_len {
        return Err(io::ErrorKind::UnexpectedEof.into());
    }
    Ok(Some(body))
}

/// Writes a fully rendered frame.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)
}

/// Reads until `buf` is full or EOF; returns bytes read. Retries on
/// `Interrupted`.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut at = 0;
    while at < buf.len() {
        match r.read(&mut buf[at..]) {
            Ok(0) => break,
            Ok(k) => at += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(at)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_request_roundtrip() {
        let coords = vec![Coord::new(-74.0, 40.7), Coord::new(1.5, -2.25)];
        let frame = encode_probe_request(&coords, true);
        let body = read_frame(&mut frame.as_slice(), MAX_REQ_BODY)
            .unwrap()
            .unwrap();
        assert_eq!(
            decode_request(&body).unwrap(),
            Request::Probe {
                coords,
                exact: true
            }
        );
    }

    #[test]
    fn ping_request_roundtrip() {
        let frame = encode_ping_request();
        let body = read_frame(&mut frame.as_slice(), MAX_REQ_BODY)
            .unwrap()
            .unwrap();
        assert_eq!(decode_request(&body).unwrap(), Request::Ping);
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(read_frame(&mut [].as_slice(), MAX_REQ_BODY)
            .unwrap()
            .is_none());
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        // Truncated header.
        assert!(decode_request(&[1, 0, 0]).is_err());
        // Unknown op.
        let mut frame = encode_ping_request();
        frame[4] = 99;
        assert!(decode_request(&frame[4..]).is_err());
        // Reserved bytes set.
        let mut frame = encode_probe_request(&[Coord::new(0.0, 0.0)], false);
        frame[6] = 1;
        assert!(decode_request(&frame[4..]).is_err());
        // Point count disagreeing with the body length.
        let mut frame = encode_probe_request(&[Coord::new(0.0, 0.0)], false);
        frame[8] = 2;
        assert!(decode_request(&frame[4..]).is_err());
        // Non-finite coordinate.
        let frame = encode_probe_request(&[Coord::new(f64::NAN, 0.0)], false);
        assert!(decode_request(&frame[4..]).is_err());
        // Unknown flags.
        let mut frame = encode_probe_request(&[Coord::new(0.0, 0.0)], false);
        frame[5] = 0x80;
        assert!(decode_request(&frame[4..]).is_err());
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&(u32::MAX).to_le_bytes());
        frame.extend_from_slice(&[0u8; 64]);
        let err = read_frame(&mut frame.as_slice(), MAX_REQ_BODY).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn response_roundtrip_with_refs() {
        // Two points: [] and [(5, true), (9, false)].
        let mut payload = Vec::new();
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&encode_ref(5, true).to_le_bytes());
        payload.extend_from_slice(&encode_ref(9, false).to_le_bytes());
        let frame = encode_response(OP_PROBE, STATUS_OK, 7, 2, &payload);
        let body = read_frame(&mut frame.as_slice(), usize::MAX)
            .unwrap()
            .unwrap();
        let (h, p) = decode_response(&body).unwrap();
        assert_eq!(
            h,
            RespHeader {
                op: OP_PROBE,
                status: STATUS_OK,
                epoch: 7,
                n: 2
            }
        );
        let refs = decode_probe_payload(h.n, p).unwrap();
        assert_eq!(refs, vec![vec![], vec![(5, true), (9, false)]]);
    }

    #[test]
    fn truncated_probe_payload_is_an_error() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&3u32.to_le_bytes()); // claims 3 refs
        payload.extend_from_slice(&encode_ref(1, true).to_le_bytes());
        assert!(decode_probe_payload(1, &payload).is_err());
        assert!(decode_probe_payload(2, &[0, 0, 0, 0]).is_err());
        // Trailing garbage.
        let mut ok = Vec::new();
        ok.extend_from_slice(&0u32.to_le_bytes());
        ok.push(0xFF);
        assert!(decode_probe_payload(1, &ok).is_err());
    }

    #[test]
    fn ref_encoding_roundtrip() {
        for (id, hit) in [
            (0u32, false),
            (0, true),
            (12345, true),
            ((1 << 30) - 1, false),
        ] {
            assert_eq!(decode_ref(encode_ref(id, hit)), (id, hit));
        }
    }

    #[test]
    fn counter_payload_roundtrip() {
        let counters = CounterBlock {
            probes: 42,
            accepted: 7,
            answered: 5,
            shed: 2,
            bad_frames: 1,
            busy: 3,
            batches: 4,
            swaps: 1,
            queue_high_water_lanes: 512,
            delta_applies: 1,
            watch_errors: 2,
            quarantines: 1,
            panics_contained: 1,
        };
        let frame = encode_response(OP_PING, STATUS_OK, 3, 0, &encode_counters(&counters));
        let body = read_frame(&mut frame.as_slice(), usize::MAX)
            .unwrap()
            .unwrap();
        let (h, p) = decode_response(&body).unwrap();
        assert_eq!(h.epoch, 3);
        assert_eq!(decode_counters(p).unwrap(), counters);
        assert_eq!(counters.accepted, counters.answered + counters.shed);
        assert!(decode_counters(&[0; 103]).is_err());
        assert!(decode_counters(&[0; 105]).is_err());
        // The old nine-word block is rejected, not misread.
        assert!(decode_counters(&[0; 72]).is_err());
    }

    #[test]
    fn v1_counter_block_still_decodes() {
        // A version-1 server sends ten words; the three newer counters
        // read as zero, everything else lands in its field.
        let full = encode_counters(&CounterBlock {
            probes: 9,
            accepted: 8,
            answered: 6,
            shed: 2,
            delta_applies: 3,
            watch_errors: 7,
            quarantines: 7,
            panics_contained: 7,
            ..Default::default()
        });
        let got = decode_counters(&full[..COUNTER_BLOCK_LEN_V1]).unwrap();
        assert_eq!(
            (
                got.probes,
                got.accepted,
                got.answered,
                got.shed,
                got.delta_applies
            ),
            (9, 8, 6, 2, 3)
        );
        assert_eq!(
            (got.watch_errors, got.quarantines, got.panics_contained),
            (0, 0, 0)
        );
    }

    #[test]
    fn retry_hint_roundtrip_and_bounds() {
        for ms in [0u32, 1, 25, 4_999, u32::MAX] {
            let payload = encode_retry_hint(ms);
            assert_eq!(decode_retry_after(&payload).unwrap(), Some(ms));
        }
        // Version-1 rejects carry no payload: that is "no hint".
        assert_eq!(decode_retry_after(&[]).unwrap(), None);
        assert!(decode_retry_after(&[1, 2, 3]).is_err());
        assert!(decode_retry_after(&[0; 5]).is_err());

        // Derivation: no measured rate → default; otherwise queue/rate,
        // clamped.
        assert_eq!(suggest_retry_after_ms(100, 0.0), RETRY_AFTER_DEFAULT_MS);
        assert_eq!(suggest_retry_after_ms(100, -1.0), RETRY_AFTER_DEFAULT_MS);
        assert_eq!(
            suggest_retry_after_ms(100, f64::NAN),
            RETRY_AFTER_DEFAULT_MS
        );
        assert_eq!(suggest_retry_after_ms(500, 1_000.0), 500);
        assert_eq!(suggest_retry_after_ms(0, 1_000.0), RETRY_AFTER_MIN_MS);
        assert_eq!(suggest_retry_after_ms(u64::MAX, 0.001), RETRY_AFTER_MAX_MS);
    }

    #[test]
    fn counter_merge_sums_totals_and_maxes_high_water() {
        let mut a = CounterBlock {
            probes: 10,
            accepted: 5,
            answered: 4,
            shed: 1,
            queue_high_water_lanes: 700,
            swaps: 2,
            ..Default::default()
        };
        let b = CounterBlock {
            probes: 3,
            accepted: 2,
            answered: 2,
            busy: 1,
            queue_high_water_lanes: 512,
            panics_contained: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.probes, 13);
        assert_eq!(a.accepted, 7);
        assert_eq!(a.answered, 6);
        assert_eq!(a.shed, 1);
        assert_eq!(a.busy, 1);
        assert_eq!(a.swaps, 2);
        assert_eq!(a.queue_high_water_lanes, 700);
        assert_eq!(a.panics_contained, 1);
        // The reconciliation invariant survives a merge.
        assert_eq!(a.accepted, a.answered + a.shed);
    }

    #[test]
    fn dedup_refs_sorts_and_true_hit_wins() {
        let mut refs = vec![(9, false), (3, true), (9, true), (3, true), (1, false)];
        dedup_refs(&mut refs);
        assert_eq!(refs, vec![(1, false), (3, true), (9, true)]);
        let mut refs = vec![(7, false), (7, false)];
        dedup_refs(&mut refs);
        assert_eq!(refs, vec![(7, false)]);
        let mut empty: PointRefs = vec![];
        dedup_refs(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn stats_request_roundtrip() {
        let frame = encode_stats_request();
        let body = read_frame(&mut frame.as_slice(), MAX_REQ_BODY)
            .unwrap()
            .unwrap();
        assert_eq!(decode_request(&body).unwrap(), Request::Stats);
        // STATS takes no flags and no payload, like PING.
        let mut bad = encode_stats_request();
        bad[5] = 1;
        assert!(decode_request(&bad[4..]).is_err());
    }

    #[test]
    fn admission_statuses_frame_cleanly() {
        // LOADSHED: a probe reject with zero entries, connection stays open.
        let frame = encode_response(OP_PROBE, STATUS_LOADSHED, 9, 0, &[]);
        let body = read_frame(&mut frame.as_slice(), usize::MAX)
            .unwrap()
            .unwrap();
        let (h, p) = decode_response(&body).unwrap();
        assert_eq!(
            (h.op, h.status, h.epoch, h.n),
            (OP_PROBE, STATUS_LOADSHED, 9, 0)
        );
        assert!(p.is_empty());
        // BUSY: an accept-gate reject carries op 0.
        let frame = encode_response(0, STATUS_BUSY, 2, 0, &[]);
        let body = read_frame(&mut frame.as_slice(), usize::MAX)
            .unwrap()
            .unwrap();
        let (h, _) = decode_response(&body).unwrap();
        assert_eq!((h.op, h.status), (0, STATUS_BUSY));
        assert_eq!(status_name(STATUS_LOADSHED), "LOADSHED");
        assert_eq!(status_name(STATUS_BUSY), "BUSY");
        assert_eq!(status_name(200), "UNKNOWN");
    }
}
