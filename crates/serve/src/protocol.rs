//! The wire protocol: small, length-prefixed, little-endian binary frames.
//!
//! Everything on the wire is little-endian. A **frame** is a `u32` body
//! length followed by the body; request and response bodies carry a
//! fixed small header and an op-specific payload:
//!
//! ```text
//! request frame
//!   u32  body_len
//!   u8   op          1 = PROBE, 2 = PING, 3 = STATS, 4 = DUMP
//!   u8   flags       PROBE bit 0: EXACT (refine candidates via the
//!                    server's polygon set; requires a Refiner)
//!                    PROBE bit 1: CELLS (points are pre-computed S2
//!                    leaf cell ids; excludes EXACT)
//!                    STATS bit 0: HISTOGRAMS (append the stage
//!                    histogram section to the reply)
//!   u16  reserved    must be 0
//!   u32  n           number of points (PROBE) or 0 (PING/STATS/DUMP)
//!   then n × { f64 lng, f64 lat }              (PROBE, coordinate form)
//!   or   n × { u64 cell_id }                   (PROBE, CELLS form)
//!
//! response frame
//!   u32  body_len
//!   u8   op          echoes the request op (0 for a BUSY accept reject)
//!   u8   status      0 = OK, 1 = BAD_REQUEST, 2 = UNSUPPORTED,
//!                    3 = INTERNAL, 4 = LOADSHED, 5 = BUSY
//!   u16  reserved    0
//!   u32  epoch       the snapshot epoch that answered (bumps on hot-swap)
//!   u32  n           number of per-point entries (PROBE) or 0 otherwise
//!   PROBE: n × { u32 count, count × u32 ref }
//!          ref = (polygon_id << 1) | hit_bit
//!            approx mode: hit_bit = is_true_hit (candidates ride along
//!            with bit 0 — the paper's ε-bounded approximate answer)
//!            exact mode:  only actual members are listed, hit_bit = 1
//!   PING / STATS: a counter block (see [`CounterBlock`])
//!   STATS+HISTOGRAMS: an extended counter block followed by a stage
//!          histogram section (see [`encode_stats_ex_payload`])
//!   DUMP:  UTF-8 JSON lines, one sampled trace event per line (n = 0)
//!   LOADSHED / BUSY: optionally a u32 retry_after_ms hint (n stays 0)
//! ```
//!
//! A probe frame carries at most [`MAX_POINTS`] points, which bounds
//! every allocation a frame can force on the server; oversized or
//! malformed frames get a `BAD_REQUEST` response and the connection is
//! closed. `u32 n` on the response always equals the request's `n`, so a
//! client can correlate by position; requests on one connection are
//! answered in order.
//!
//! ## Versioning
//!
//! [`PROTOCOL_VERSION`] is 3. The frame and header layouts are unchanged
//! since version 1; each bump adds payload, never reshapes it, so the
//! versions are compatible in both directions.
//!
//! Version 2 over version 1:
//!
//! * The PING/STATS counter block grew from ten to thirteen `u64` words
//!   (`watch_errors`, `quarantines`, `panics_contained`). A version-2
//!   client still accepts the 80-byte version-1 block and reads the
//!   missing counters as zero ([`decode_counters`]).
//! * `LOADSHED`/`BUSY` replies may now carry a 4-byte `retry_after_ms`
//!   payload. Version-1 replies carried none; [`decode_retry_after`]
//!   maps an empty payload to "no hint". Version-1 clients that ignore
//!   reject payloads (the documented contract) are unaffected.
//!
//! Version 3 over version 2 — everything new is **opt-in by request**,
//! so an older peer never sees a payload shape it cannot parse:
//!
//! * STATS accepts [`FLAG_HISTOGRAMS`]; the flagged reply carries a
//!   fourteen-word extended counter block (adding
//!   `window_high_water_lanes`, the queue high-water mark since the
//!   previous flagged STATS read) plus a per-stage latency histogram
//!   section ([`encode_stats_ex_payload`] / [`decode_stats_ex_payload`]).
//!   A **plain** STATS (or PING) reply still carries the 104-byte
//!   version-2 block, which version-2 clients parse unchanged; a
//!   version-2 server answers a flagged STATS `BAD_REQUEST` (its
//!   decoder requires zero flags), which a version-3 client can detect
//!   and downgrade from. [`decode_counters`] accepts all three block
//!   sizes (80/104/112).
//! * `OP_DUMP` requests the server's sampled trace ring as UTF-8 JSON
//!   lines (non-destructive). A version-2 server answers it
//!   `BAD_REQUEST` (unknown op); a version-2 client never sends it.
//!
//! Version 4 over version 3 — again additive, again opt-in by request:
//!
//! * The extended counter block grew from fourteen to seventeen words
//!   (the hot-cell cache hit/miss counters and the fairness-quota shed
//!   counter — `cache_hits`, `cache_misses`, `quota_sheds`), following
//!   the same append-only rule: [`decode_counters`] accepts all four
//!   block sizes (80/104/112/136) and reads absent counters as zero,
//!   and the plain PING/STATS block stays thirteen words. The flagged
//!   STATS payload leads with the seventeen-word block
//!   ([`COUNTER_BLOCK_LEN_V4`]).
//! * PROBE accepts [`FLAG_CELLS`]: the payload is `n` pre-computed S2
//!   leaf cell ids (`n × u64`) instead of `n` coordinate pairs. The
//!   client pays the coordinate→cell conversion once at encode time and
//!   the server skips it entirely — the standard S2 serving idiom, and
//!   the variant the hot-cell cache is fastest against. Cell frames are
//!   approximate-only: `FLAG_CELLS | FLAG_EXACT` is `BAD_REQUEST`,
//!   because refinement tests the *coordinate* against real polygon
//!   boundaries and a cell id no longer carries one. Arbitrary `u64`
//!   values are safe — a garbage id prefix-matches nothing in the trie
//!   and resolves to an empty answer. A version-3 server rejects the
//!   unknown flag (`BAD_REQUEST`), which a client can detect and
//!   downgrade from; a version-3 client never sets it.
//!
//! ## Admission-control statuses
//!
//! * `LOADSHED` (probe only, `n = 0`): the server's bounded probe queue
//!   was full, so the frame was answered immediately instead of queuing.
//!   The connection **stays open** — the client may retry or back off;
//!   a shed frame is never silently dropped. The payload, when present,
//!   is a `u32 retry_after_ms` hint derived from the live queue depth
//!   and the measured drain rate ([`suggest_retry_after_ms`]).
//! * `BUSY` (op `0`, sent straight from the accept loop, then close):
//!   the server is at its connection cap and refused this connection
//!   before a reader thread was even spawned. Carries the same optional
//!   `retry_after_ms` payload.

use geom::Coord;
use s2cell::CellId;
use std::io::{self, Read, Write};

/// Wire protocol version implemented by this build (see the module docs'
/// "Versioning" section for what changed and why it is compatible).
pub const PROTOCOL_VERSION: u32 = 4;

/// Probe a batch of coordinates.
pub const OP_PROBE: u8 = 1;
/// Liveness / epoch / counter check.
pub const OP_PING: u8 = 2;
/// Counter/metrics snapshot (same payload as PING; a distinct op so
/// monitoring traffic is distinguishable from liveness checks).
pub const OP_STATS: u8 = 3;
/// Dump the server's sampled trace ring as UTF-8 JSON lines
/// (non-destructive; version 3+). With observability disabled the
/// server answers `UNSUPPORTED`.
pub const OP_DUMP: u8 = 4;

/// PROBE request flag bit 0: refine candidate hits to exact membership.
pub const FLAG_EXACT: u8 = 1;
/// PROBE request flag bit 1: the payload is `n × u64` pre-computed S2
/// leaf cell ids instead of `n × 16`-byte coordinate pairs (version 4+).
/// Mutually exclusive with [`FLAG_EXACT`] — refinement needs the
/// coordinate, which a cell id no longer carries.
pub const FLAG_CELLS: u8 = 2;
/// STATS request flag bit 0: append the extended counter block and the
/// stage histogram section to the reply (version 3+). Deliberately a
/// *request* flag: a version-2 client never sets it, so it never
/// receives the longer payload its decoder would reject.
pub const FLAG_HISTOGRAMS: u8 = 1;

/// Response status codes.
pub const STATUS_OK: u8 = 0;
/// The frame was structurally invalid (also closes the connection).
pub const STATUS_BAD_REQUEST: u8 = 1;
/// The request needs a capability the server lacks (exact mode without
/// a refiner).
pub const STATUS_UNSUPPORTED: u8 = 2;
/// The server failed internally while answering.
pub const STATUS_INTERNAL: u8 = 3;
/// The probe queue was full; the frame was answered immediately instead
/// of queuing (the connection stays open — retry or back off).
pub const STATUS_LOADSHED: u8 = 4;
/// The server is at its connection cap; sent once on accept, then the
/// connection is closed.
pub const STATUS_BUSY: u8 = 5;

/// Human-readable name of a status code (for logs and error displays).
pub fn status_name(status: u8) -> &'static str {
    match status {
        STATUS_OK => "OK",
        STATUS_BAD_REQUEST => "BAD_REQUEST",
        STATUS_UNSUPPORTED => "UNSUPPORTED",
        STATUS_INTERNAL => "INTERNAL",
        STATUS_LOADSHED => "LOADSHED",
        STATUS_BUSY => "BUSY",
        _ => "UNKNOWN",
    }
}

/// Hard cap on points per probe frame (bounds per-frame allocations).
pub const MAX_POINTS: usize = 65_536;
/// Request body header: op + flags + reserved + n.
pub const REQ_HEADER_LEN: usize = 8;
/// Response body header: op + status + reserved + epoch + n.
pub const RESP_HEADER_LEN: usize = 12;
/// Largest acceptable request body (a full probe frame).
pub const MAX_REQ_BODY: usize = REQ_HEADER_LEN + MAX_POINTS * 16;

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Probe `coords`; `exact` selects refine-to-membership mode.
    Probe {
        /// The query points (x = lng, y = lat degrees).
        coords: Vec<Coord>,
        /// Refine candidates via the server's polygon set.
        exact: bool,
    },
    /// Probe pre-computed S2 leaf cells ([`FLAG_CELLS`]; version 4+).
    /// Always approximate — the exact flag is rejected on cell frames.
    ProbeCells {
        /// The query cells (leaf cell ids; garbage ids resolve empty).
        cells: Vec<CellId>,
    },
    /// Liveness check; the response carries epoch + the counter block.
    Ping,
    /// Counter/metrics snapshot; without `histograms` the response
    /// shape matches [`Request::Ping`], with it the payload is the
    /// extended block + stage histogram section.
    Stats {
        /// [`FLAG_HISTOGRAMS`] was set.
        histograms: bool,
    },
    /// Dump the sampled trace ring as JSON lines.
    Dump,
}

/// One point's answer: `(polygon id, hit bit)` pairs (see the module
/// docs for the bit's meaning per mode).
pub type PointRefs = Vec<(u32, bool)>;

/// A decoded probe response.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeReply {
    /// Snapshot epoch that answered (bumps on hot-swap).
    pub epoch: u32,
    /// Per-point reference lists, aligned with the request's coords.
    pub refs: Vec<PointRefs>,
}

/// A decoded ping response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PingReply {
    /// Snapshot epoch currently serving.
    pub epoch: u32,
    /// Total probe points answered since the server started
    /// (`counters.probes`, kept as a field for convenience).
    pub probes_served: u64,
    /// The full serving counter block.
    pub counters: CounterBlock,
}

/// A decoded stats response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsReply {
    /// Snapshot epoch currently serving.
    pub epoch: u32,
    /// The serving counter block.
    pub counters: CounterBlock,
}

/// A decoded **flagged** stats response (protocol v3): the extended
/// counter block plus the per-stage histogram section. The section is
/// empty when the answering server runs without observability — the
/// counters (including the windowed high-water mark, which this read
/// consumed) are still meaningful.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsExReply {
    /// Snapshot epoch currently serving.
    pub epoch: u32,
    /// The extended serving counter block.
    pub counters: CounterBlock,
    /// Per-stage histograms (merged across shards when a router
    /// answered).
    pub histograms: Vec<StageHistogram>,
}

/// The server's aggregate serving counters, as carried in PING and STATS
/// payloads: thirteen little-endian `u64` words, in field order, plus a
/// fourteenth (`window_high_water_lanes`) present only in the extended
/// block a flagged STATS returns.
///
/// Reconciliation invariant (after a graceful drain, with all replies
/// delivered): `accepted == answered + shed` — every accepted frame got
/// exactly one reply, and a shed frame is always answered `LOADSHED`,
/// never silently dropped. The invariant holds through worker panics:
/// a poisoned batch answers its frames `INTERNAL`, which still counts
/// toward `answered`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterBlock {
    /// Probe points answered (sum of lanes over answered probe frames).
    pub probes: u64,
    /// Well-formed frames taken in (probe, ping, stats — shed included).
    pub accepted: u64,
    /// Frames answered with a real (non-LOADSHED) reply.
    pub answered: u64,
    /// Probe frames answered `LOADSHED` because the queue was full.
    pub shed: u64,
    /// Malformed frames answered `BAD_REQUEST` (connection then closed).
    pub bad_frames: u64,
    /// Connections refused with `BUSY` at the accept gate.
    pub busy: u64,
    /// Probe micro-batches executed (`probes / batches` = mean width).
    pub batches: u64,
    /// Successful index publishes (`epoch - 1`): full snapshot
    /// hot-swaps plus delta applies.
    pub swaps: u64,
    /// Highest queue occupancy observed, in lanes (points). Bounded by
    /// the server's configured queue depth.
    pub queue_high_water_lanes: u64,
    /// Delta files applied onto the live index (a subset of `swaps` —
    /// the updates that arrived without remapping the base snapshot).
    pub delta_applies: u64,
    /// Transient IO errors hit by the snapshot watcher while statting or
    /// reading (each one also widens the watcher's retry backoff; they
    /// are no longer silently treated as "no change").
    pub watch_errors: u64,
    /// Corrupt or wrong-chain delta files the watcher renamed to
    /// `*.quarantine` and skipped, keeping the current epoch serving.
    pub quarantines: u64,
    /// Worker-thread panics contained by `catch_unwind`: each one
    /// poisoned a single batch (its frames were answered `INTERNAL`)
    /// instead of the process.
    pub panics_contained: u64,
    /// Queue high-water mark (lanes) **since the previous flagged STATS
    /// read** — unlike `queue_high_water_lanes`, which is since server
    /// start and goes stale after a one-off spike, this one resets to
    /// the live occupancy baseline on every read, so a dashboard sees
    /// recent pressure, not history. Version 3+, carried only in the
    /// extended block; decodes as zero from older blocks.
    pub window_high_water_lanes: u64,
    /// Hot-cell cache hits: probed cells answered from the epoch-keyed
    /// result cache without a trie walk. Zero on servers running with
    /// the cache disabled. Version 4+, extended block only.
    pub cache_hits: u64,
    /// Hot-cell cache misses: probed cells that walked the trie (and
    /// filled the cache, when enabled). With the cache disabled both
    /// cache counters stay zero — a miss is counted only when the cache
    /// was actually consulted. Version 4+, extended block only.
    pub cache_misses: u64,
    /// Probe frames answered `LOADSHED` by the **per-client fairness
    /// quota** (the connection already had its full admitted-lanes
    /// budget in flight) rather than by queue depth. Always a subset of
    /// `shed` — the reconciliation invariant is unchanged. Version 4+,
    /// extended block only.
    pub quota_sheds: u64,
}

impl CounterBlock {
    /// Folds another block into this one for a fleet-wide view (the
    /// router's merged PING/STATS reply). Every counter is a monotonic
    /// total and sums, except the two high-water marks
    /// (`queue_high_water_lanes`, `window_high_water_lanes`) — the
    /// merged value is the worst shard's.
    pub fn merge(&mut self, other: &CounterBlock) {
        self.probes += other.probes;
        self.accepted += other.accepted;
        self.answered += other.answered;
        self.shed += other.shed;
        self.bad_frames += other.bad_frames;
        self.busy += other.busy;
        self.batches += other.batches;
        self.swaps += other.swaps;
        self.queue_high_water_lanes = self
            .queue_high_water_lanes
            .max(other.queue_high_water_lanes);
        self.delta_applies += other.delta_applies;
        self.watch_errors += other.watch_errors;
        self.quarantines += other.quarantines;
        self.panics_contained += other.panics_contained;
        self.window_high_water_lanes = self
            .window_high_water_lanes
            .max(other.window_high_water_lanes);
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.quota_sheds += other.quota_sheds;
    }
}

/// Canonicalizes one point's reference list after a scatter-gather
/// merge: sorted by polygon id, one entry per id, a true hit winning
/// over a candidate. Coarse indexed cells replicated across shards can
/// make two shards report the same polygon for one point; the answers
/// only ever differ in multiplicity, never in the hit bit, but the
/// true-hit-wins rule makes the merge safe even against a stale
/// replica mid-rolling-swap.
pub fn dedup_refs(refs: &mut PointRefs) {
    // Sort so `(id, true)` precedes `(id, false)`, then keep the first
    // entry of each id.
    refs.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
    refs.dedup_by_key(|r| r.0);
}

/// Serialized size of a [`CounterBlock`] as carried by plain PING/STATS:
/// thirteen `u64` words (protocol version 2 — kept as the default so
/// version-2 clients parse unflagged replies unchanged).
pub const COUNTER_BLOCK_LEN: usize = 104;

/// Serialized size of a version-1 counter block: ten `u64` words.
/// Still accepted by [`decode_counters`], with the newer counters read
/// as zero.
pub const COUNTER_BLOCK_LEN_V1: usize = 80;

/// Serialized size of the extended version-3 counter block: fourteen
/// `u64` words. Still accepted by [`decode_counters`] (the version-4
/// counters read as zero); flagged STATS now sends the v4 block.
pub const COUNTER_BLOCK_LEN_V3: usize = 112;

/// Serialized size of the extended (version-4) counter block a flagged
/// STATS returns: seventeen `u64` words — v3 plus the hot-cell cache
/// hit/miss counters and the fairness-quota shed counter.
pub const COUNTER_BLOCK_LEN_V4: usize = 136;

/// Serializes a counter block (plain PING/STATS response payload,
/// thirteen words — `window_high_water_lanes` is dropped; it travels
/// only in the extended block).
pub fn encode_counters(c: &CounterBlock) -> [u8; COUNTER_BLOCK_LEN] {
    let mut out = [0u8; COUNTER_BLOCK_LEN];
    for (slot, w) in out.chunks_exact_mut(8).zip(counter_words(c)) {
        slot.copy_from_slice(&w.to_le_bytes());
    }
    out
}

/// Serializes the extended seventeen-word counter block (the first part
/// of a flagged-STATS payload).
pub fn encode_counters_ex(c: &CounterBlock) -> [u8; COUNTER_BLOCK_LEN_V4] {
    let mut out = [0u8; COUNTER_BLOCK_LEN_V4];
    for (slot, w) in out
        .chunks_exact_mut(8)
        .zip(counter_words(c).into_iter().chain([
            c.window_high_water_lanes,
            c.cache_hits,
            c.cache_misses,
            c.quota_sheds,
        ]))
    {
        slot.copy_from_slice(&w.to_le_bytes());
    }
    out
}

/// The thirteen always-present words, in wire order.
fn counter_words(c: &CounterBlock) -> [u64; 13] {
    [
        c.probes,
        c.accepted,
        c.answered,
        c.shed,
        c.bad_frames,
        c.busy,
        c.batches,
        c.swaps,
        c.queue_high_water_lanes,
        c.delta_applies,
        c.watch_errors,
        c.quarantines,
        c.panics_contained,
    ]
}

/// Decodes a counter block from a PING/STATS response payload.
///
/// Accepts the extended seventeen-word block (v4), the fourteen-word
/// block (v3), the thirteen-word block (v2), and, for compatibility
/// with version-1 servers, the old ten-word block; counters a shorter
/// block lacks decode as zero.
///
/// # Errors
/// A static description of the structural violation.
pub fn decode_counters(payload: &[u8]) -> Result<CounterBlock, &'static str> {
    if payload.len() != COUNTER_BLOCK_LEN
        && payload.len() != COUNTER_BLOCK_LEN_V1
        && payload.len() != COUNTER_BLOCK_LEN_V3
        && payload.len() != COUNTER_BLOCK_LEN_V4
    {
        return Err(
            "counter block is not ten (v1), thirteen (v2), fourteen (v3), or seventeen (v4) \
             u64 words",
        );
    }
    let v2 = payload.len() >= COUNTER_BLOCK_LEN;
    let v3 = payload.len() >= COUNTER_BLOCK_LEN_V3;
    let v4 = payload.len() >= COUNTER_BLOCK_LEN_V4;
    Ok(CounterBlock {
        probes: u64_at(payload, 0),
        accepted: u64_at(payload, 8),
        answered: u64_at(payload, 16),
        shed: u64_at(payload, 24),
        bad_frames: u64_at(payload, 32),
        busy: u64_at(payload, 40),
        batches: u64_at(payload, 48),
        swaps: u64_at(payload, 56),
        queue_high_water_lanes: u64_at(payload, 64),
        delta_applies: u64_at(payload, 72),
        watch_errors: if v2 { u64_at(payload, 80) } else { 0 },
        quarantines: if v2 { u64_at(payload, 88) } else { 0 },
        panics_contained: if v2 { u64_at(payload, 96) } else { 0 },
        window_high_water_lanes: if v3 { u64_at(payload, 104) } else { 0 },
        cache_hits: if v4 { u64_at(payload, 112) } else { 0 },
        cache_misses: if v4 { u64_at(payload, 120) } else { 0 },
        quota_sheds: if v4 { u64_at(payload, 128) } else { 0 },
    })
}

// ---------------------------------------------------------------------
// Stage histograms (flagged-STATS payload section)
// ---------------------------------------------------------------------

/// Pipeline stage ids for the wire histogram section. The first five
/// record **nanoseconds**; `BATCH_LANES` records lanes per executed
/// micro-batch and `PROBE_DEPTH` trie node accesses per probed cell.
pub const STAGE_QUEUE_WAIT: u8 = 0;
/// Batched trie walk (`probe_batch`), per micro-batch.
pub const STAGE_WALK: u8 = 1;
/// Exact-mode candidate refinement, per micro-batch that refined.
pub const STAGE_REFINE: u8 = 2;
/// Reply serialization + socket write, per probe reply.
pub const STAGE_WRITE: u8 = 3;
/// Admission to reply-flushed wall time, per probe frame.
pub const STAGE_FRAME_TOTAL: u8 = 4;
/// Lanes per executed micro-batch (a value histogram, not a latency).
pub const STAGE_BATCH_LANES: u8 = 5;
/// Trie node accesses per probed cell (0–7; see
/// `Act::lookup_batch_depths`).
pub const STAGE_PROBE_DEPTH: u8 = 6;
/// Hot-cell cache hit rate per micro-batch, in whole percent (0–100;
/// a value histogram). Recorded only on batches that consulted the
/// cache, so a cache-off server's histogram stays empty.
pub const STAGE_CACHE_HIT_PCT: u8 = 7;
/// Number of known stages (ids `0..STAGE_COUNT`).
pub const STAGE_COUNT: usize = 8;

/// Human-readable stage name (metric label / log display).
pub fn stage_name(stage: u8) -> &'static str {
    match stage {
        STAGE_QUEUE_WAIT => "queue_wait",
        STAGE_WALK => "walk",
        STAGE_REFINE => "refine",
        STAGE_WRITE => "write",
        STAGE_FRAME_TOTAL => "frame_total",
        STAGE_BATCH_LANES => "batch_lanes",
        STAGE_PROBE_DEPTH => "probe_depth",
        STAGE_CACHE_HIT_PCT => "cache_hit_pct",
        _ => "unknown",
    }
}

/// One stage's histogram as carried on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageHistogram {
    /// `STAGE_*` id. Unknown ids decode fine (forward compatibility);
    /// displays label them `"unknown"`.
    pub stage: u8,
    /// The bucket snapshot (log-bucketed; see `act_obs::Histogram`).
    pub hist: act_obs::HistogramSnapshot,
}

/// Cap on histograms per section: headroom over [`STAGE_COUNT`] for
/// future stages while still bounding a hostile frame.
pub const MAX_WIRE_HISTS: usize = 64;

/// Serializes a flagged-STATS payload: the extended counter block, then
/// `u32 n_hists`, then per histogram `{ u8 stage, u8 pad[3], u64 sum,
/// u32 n_buckets, n_buckets × u64 }`. Bucket arrays are trailing-zero
/// trimmed by the snapshot, so an idle stage costs 17 bytes.
pub fn encode_stats_ex_payload(c: &CounterBlock, hists: &[StageHistogram]) -> Vec<u8> {
    assert!(hists.len() <= MAX_WIRE_HISTS, "too many wire histograms");
    let mut out = Vec::with_capacity(
        COUNTER_BLOCK_LEN_V4
            + 4
            + hists
                .iter()
                .map(|h| 16 + h.hist.buckets.len() * 8)
                .sum::<usize>(),
    );
    out.extend_from_slice(&encode_counters_ex(c));
    out.extend_from_slice(&(hists.len() as u32).to_le_bytes());
    for h in hists {
        debug_assert!(h.hist.buckets.len() <= act_obs::NUM_BUCKETS);
        out.push(h.stage);
        out.extend_from_slice(&[0, 0, 0]);
        out.extend_from_slice(&h.hist.sum.to_le_bytes());
        out.extend_from_slice(&(h.hist.buckets.len() as u32).to_le_bytes());
        for b in &h.hist.buckets {
            out.extend_from_slice(&b.to_le_bytes());
        }
    }
    out
}

/// Decodes a flagged-STATS payload into the extended counter block and
/// the stage histograms.
///
/// # Errors
/// A static description of the structural violation — truncation at any
/// boundary, an oversized count, nonzero pad, or trailing bytes.
pub fn decode_stats_ex_payload(
    payload: &[u8],
) -> Result<(CounterBlock, Vec<StageHistogram>), &'static str> {
    if payload.len() < COUNTER_BLOCK_LEN_V4 + 4 {
        return Err("stats payload truncated before the histogram section");
    }
    let counters = decode_counters(&payload[..COUNTER_BLOCK_LEN_V4])?;
    let n_hists = u32_at(payload, COUNTER_BLOCK_LEN_V4) as usize;
    if n_hists > MAX_WIRE_HISTS {
        return Err("histogram section claims too many histograms");
    }
    let mut at = COUNTER_BLOCK_LEN_V4 + 4;
    let mut hists = Vec::with_capacity(n_hists);
    for _ in 0..n_hists {
        if at + 16 > payload.len() {
            return Err("histogram truncated at its header");
        }
        let stage = payload[at];
        if payload[at + 1] != 0 || payload[at + 2] != 0 || payload[at + 3] != 0 {
            return Err("nonzero histogram pad bytes");
        }
        let sum = u64_at(payload, at + 4);
        let n_buckets = u32_at(payload, at + 12) as usize;
        if n_buckets > act_obs::NUM_BUCKETS {
            return Err("histogram claims more buckets than the format has");
        }
        at += 16;
        if at + n_buckets * 8 > payload.len() {
            return Err("histogram truncated inside its buckets");
        }
        let buckets = (0..n_buckets)
            .map(|k| u64_at(payload, at + k * 8))
            .collect();
        at += n_buckets * 8;
        hists.push(StageHistogram {
            stage,
            hist: act_obs::HistogramSnapshot { sum, buckets },
        });
    }
    if at != payload.len() {
        return Err("trailing bytes after the histogram section");
    }
    Ok((counters, hists))
}

/// Folds `other`'s histograms into `into` by stage id (bucket-wise sum,
/// the histogram analogue of [`CounterBlock::merge`]); stages absent
/// from `into` are appended. Keeps `into` sorted by stage id so merged
/// router replies are deterministic.
pub fn merge_stage_histograms(into: &mut Vec<StageHistogram>, other: &[StageHistogram]) {
    for o in other {
        match into.iter_mut().find(|h| h.stage == o.stage) {
            Some(h) => h.hist.merge(&o.hist),
            None => into.push(o.clone()),
        }
    }
    into.sort_by_key(|h| h.stage);
}

// ---------------------------------------------------------------------
// Retry-after hints (LOADSHED / BUSY payloads)
// ---------------------------------------------------------------------

/// Serialized size of a retry-after hint: one `u32`, milliseconds.
pub const RETRY_HINT_LEN: usize = 4;

/// Floor of any emitted retry hint, milliseconds.
pub const RETRY_AFTER_MIN_MS: u32 = 1;
/// Ceiling of any emitted retry hint, milliseconds.
pub const RETRY_AFTER_MAX_MS: u32 = 5_000;
/// Hint used before the server has measured a drain rate (or for BUSY
/// rejects, where no queue estimate applies).
pub const RETRY_AFTER_DEFAULT_MS: u32 = 25;

/// Serializes a `retry_after_ms` hint (LOADSHED/BUSY response payload).
pub fn encode_retry_hint(ms: u32) -> [u8; RETRY_HINT_LEN] {
    ms.to_le_bytes()
}

/// Extracts the optional `retry_after_ms` hint from a LOADSHED or BUSY
/// reply payload. An empty payload (a version-1 server) is `None`.
///
/// # Errors
/// A static description of the structural violation.
pub fn decode_retry_after(payload: &[u8]) -> Result<Option<u32>, &'static str> {
    match payload.len() {
        0 => Ok(None),
        RETRY_HINT_LEN => Ok(Some(u32_at(payload, 0))),
        _ => Err("reject payload is not an optional u32 retry hint"),
    }
}

/// Derives a `retry_after_ms` hint from the live queue occupancy and the
/// measured drain rate: the estimated time for the queue to drain, so a
/// client that sleeps the hint lands when capacity is plausible again.
/// Clamped to `[RETRY_AFTER_MIN_MS, RETRY_AFTER_MAX_MS]`; with no
/// measured rate yet the hint falls back to [`RETRY_AFTER_DEFAULT_MS`].
pub fn suggest_retry_after_ms(queued_lanes: u64, drain_lanes_per_sec: f64) -> u32 {
    if drain_lanes_per_sec <= 0.0 || !drain_lanes_per_sec.is_finite() {
        return RETRY_AFTER_DEFAULT_MS;
    }
    let ms = ((queued_lanes as f64 / drain_lanes_per_sec) * 1_000.0).ceil();
    // `as` saturates on overflow/non-finite, and the clamp bounds it.
    (ms as u64).clamp(RETRY_AFTER_MIN_MS as u64, RETRY_AFTER_MAX_MS as u64) as u32
}

/// Packs a polygon reference for the wire.
#[inline]
pub fn encode_ref(id: u32, hit: bool) -> u32 {
    (id << 1) | hit as u32
}

/// Unpacks a wire polygon reference.
#[inline]
pub fn decode_ref(word: u32) -> (u32, bool) {
    (word >> 1, word & 1 == 1)
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Renders a complete probe request frame.
pub fn encode_probe_request(coords: &[Coord], exact: bool) -> Vec<u8> {
    assert!(coords.len() <= MAX_POINTS, "probe frame over MAX_POINTS");
    let body_len = REQ_HEADER_LEN + coords.len() * 16;
    let mut out = Vec::with_capacity(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(OP_PROBE);
    out.push(if exact { FLAG_EXACT } else { 0 });
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&(coords.len() as u32).to_le_bytes());
    for c in coords {
        out.extend_from_slice(&c.x.to_le_bytes());
        out.extend_from_slice(&c.y.to_le_bytes());
    }
    out
}

/// Renders a probe request frame in cell form ([`FLAG_CELLS`]): the
/// points are pre-computed S2 leaf cell ids, 8 bytes each instead of 16,
/// and the server skips the coordinate→cell conversion. Approximate
/// mode only (see [`FLAG_CELLS`] for why exact is excluded).
pub fn encode_probe_cells_request(cells: &[CellId]) -> Vec<u8> {
    assert!(cells.len() <= MAX_POINTS, "probe frame over MAX_POINTS");
    let body_len = REQ_HEADER_LEN + cells.len() * 8;
    let mut out = Vec::with_capacity(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(OP_PROBE);
    out.push(FLAG_CELLS);
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&(cells.len() as u32).to_le_bytes());
    for c in cells {
        out.extend_from_slice(&c.0.to_le_bytes());
    }
    out
}

/// Renders a complete ping request frame.
pub fn encode_ping_request() -> Vec<u8> {
    encode_headless_request(OP_PING, 0)
}

/// Renders a complete stats request frame.
pub fn encode_stats_request() -> Vec<u8> {
    encode_headless_request(OP_STATS, 0)
}

/// Renders a stats request with [`FLAG_HISTOGRAMS`] set (the reply
/// carries the extended counter block + stage histogram section).
pub fn encode_stats_ex_request() -> Vec<u8> {
    encode_headless_request(OP_STATS, FLAG_HISTOGRAMS)
}

/// Renders a complete trace-dump request frame.
pub fn encode_dump_request() -> Vec<u8> {
    encode_headless_request(OP_DUMP, 0)
}

/// A request frame that is all header: op, flags, zero points.
fn encode_headless_request(op: u8, flags: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + REQ_HEADER_LEN);
    out.extend_from_slice(&(REQ_HEADER_LEN as u32).to_le_bytes());
    out.push(op);
    out.push(flags);
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&0u32.to_le_bytes());
    out
}

/// Renders a complete response frame around an already-encoded payload.
pub fn encode_response(op: u8, status: u8, epoch: u32, n: u32, payload: &[u8]) -> Vec<u8> {
    let body_len = RESP_HEADER_LEN + payload.len();
    let mut out = Vec::with_capacity(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(op);
    out.push(status);
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&n.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

#[inline]
fn u32_at(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().expect("4 bytes"))
}

#[inline]
fn u64_at(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().expect("8 bytes"))
}

#[inline]
fn f64_at(b: &[u8], at: usize) -> f64 {
    f64::from_le_bytes(b[at..at + 8].try_into().expect("8 bytes"))
}

/// Decodes a request body (the bytes after the `u32` length prefix).
///
/// # Errors
/// A static description of the structural violation; the server answers
/// `BAD_REQUEST` and closes the connection.
pub fn decode_request(body: &[u8]) -> Result<Request, &'static str> {
    if body.len() < REQ_HEADER_LEN {
        return Err("request body shorter than its header");
    }
    let (op, flags) = (body[0], body[1]);
    if body[2] != 0 || body[3] != 0 {
        return Err("nonzero reserved bytes");
    }
    let n = u32_at(body, 4) as usize;
    match op {
        OP_PROBE => {
            if flags & !(FLAG_EXACT | FLAG_CELLS) != 0 {
                return Err("unknown request flags");
            }
            if n > MAX_POINTS {
                return Err("probe frame exceeds MAX_POINTS");
            }
            if flags & FLAG_CELLS != 0 {
                if flags & FLAG_EXACT != 0 {
                    return Err("cell frames cannot request exact mode");
                }
                if body.len() != REQ_HEADER_LEN + n * 8 {
                    return Err("probe body length disagrees with cell count");
                }
                // Any u64 is acceptable here: a garbage id prefix-matches
                // nothing in the trie and resolves to an empty answer.
                let cells = (0..n)
                    .map(|i| CellId(u64_at(body, REQ_HEADER_LEN + i * 8)))
                    .collect();
                return Ok(Request::ProbeCells { cells });
            }
            if body.len() != REQ_HEADER_LEN + n * 16 {
                return Err("probe body length disagrees with point count");
            }
            let mut coords = Vec::with_capacity(n);
            for i in 0..n {
                let at = REQ_HEADER_LEN + i * 16;
                let (x, y) = (f64_at(body, at), f64_at(body, at + 8));
                if !x.is_finite() || !y.is_finite() {
                    return Err("non-finite coordinate");
                }
                coords.push(Coord::new(x, y));
            }
            Ok(Request::Probe {
                coords,
                exact: flags & FLAG_EXACT != 0,
            })
        }
        OP_PING | OP_STATS | OP_DUMP => {
            if op == OP_STATS {
                if flags & !FLAG_HISTOGRAMS != 0 {
                    return Err("unknown stats flags");
                }
            } else if flags != 0 {
                return Err("ping/dump take no flags");
            }
            if n != 0 || body.len() != REQ_HEADER_LEN {
                return Err("ping/stats/dump carry no payload");
            }
            Ok(match op {
                OP_PING => Request::Ping,
                OP_STATS => Request::Stats {
                    histograms: flags & FLAG_HISTOGRAMS != 0,
                },
                _ => Request::Dump,
            })
        }
        _ => Err("unknown op"),
    }
}

/// Response header fields, decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RespHeader {
    /// Echoed request op.
    pub op: u8,
    /// Status code (`STATUS_*`).
    pub status: u8,
    /// Answering snapshot epoch.
    pub epoch: u32,
    /// Per-point entry count.
    pub n: u32,
}

/// Decodes a response body into its header and payload slice.
///
/// # Errors
/// A static description of the structural violation.
pub fn decode_response(body: &[u8]) -> Result<(RespHeader, &[u8]), &'static str> {
    if body.len() < RESP_HEADER_LEN {
        return Err("response body shorter than its header");
    }
    if body[2] != 0 || body[3] != 0 {
        return Err("nonzero reserved bytes");
    }
    Ok((
        RespHeader {
            op: body[0],
            status: body[1],
            epoch: u32_at(body, 4),
            n: u32_at(body, 8),
        },
        &body[RESP_HEADER_LEN..],
    ))
}

/// Decodes a probe response payload into per-point reference lists.
///
/// # Errors
/// A static description of the structural violation.
pub fn decode_probe_payload(n: u32, payload: &[u8]) -> Result<Vec<PointRefs>, &'static str> {
    let mut refs = Vec::with_capacity(n as usize);
    let mut at = 0usize;
    for _ in 0..n {
        if at + 4 > payload.len() {
            return Err("probe payload truncated at a count");
        }
        let count = u32_at(payload, at) as usize;
        at += 4;
        if at + count * 4 > payload.len() {
            return Err("probe payload truncated inside a ref list");
        }
        let mut one = Vec::with_capacity(count);
        for k in 0..count {
            one.push(decode_ref(u32_at(payload, at + k * 4)));
        }
        at += count * 4;
        refs.push(one);
    }
    if at != payload.len() {
        return Err("trailing bytes after the last ref list");
    }
    Ok(refs)
}

// ---------------------------------------------------------------------
// Blocking frame I/O (client side and tests; the server uses its own
// shutdown-aware reader)
// ---------------------------------------------------------------------

/// Reads one length-prefixed frame body. `Ok(None)` is a clean EOF at a
/// frame boundary.
///
/// # Errors
/// I/O errors, truncation mid-frame, and frames above `max_body`.
pub fn read_frame(r: &mut impl Read, max_body: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match read_full(r, &mut len)? {
        0 => return Ok(None),
        4 => {}
        _ => return Err(io::ErrorKind::UnexpectedEof.into()),
    }
    let body_len = u32::from_le_bytes(len) as usize;
    if body_len > max_body {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds the protocol's size cap",
        ));
    }
    let mut body = vec![0u8; body_len];
    if read_full(r, &mut body)? != body_len {
        return Err(io::ErrorKind::UnexpectedEof.into());
    }
    Ok(Some(body))
}

/// Writes a fully rendered frame.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)
}

/// Reads until `buf` is full or EOF; returns bytes read. Retries on
/// `Interrupted`.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut at = 0;
    while at < buf.len() {
        match r.read(&mut buf[at..]) {
            Ok(0) => break,
            Ok(k) => at += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(at)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_request_roundtrip() {
        let coords = vec![Coord::new(-74.0, 40.7), Coord::new(1.5, -2.25)];
        let frame = encode_probe_request(&coords, true);
        let body = read_frame(&mut frame.as_slice(), MAX_REQ_BODY)
            .unwrap()
            .unwrap();
        assert_eq!(
            decode_request(&body).unwrap(),
            Request::Probe {
                coords,
                exact: true
            }
        );
    }

    #[test]
    fn ping_request_roundtrip() {
        let frame = encode_ping_request();
        let body = read_frame(&mut frame.as_slice(), MAX_REQ_BODY)
            .unwrap()
            .unwrap();
        assert_eq!(decode_request(&body).unwrap(), Request::Ping);
    }

    #[test]
    fn probe_cells_request_roundtrip() {
        let cells = vec![CellId(0x9f43_2100_0000_0001), CellId(u64::MAX), CellId(0)];
        let frame = encode_probe_cells_request(&cells);
        let body = read_frame(&mut frame.as_slice(), MAX_REQ_BODY)
            .unwrap()
            .unwrap();
        assert_eq!(
            decode_request(&body).unwrap(),
            Request::ProbeCells { cells }
        );
    }

    #[test]
    fn probe_cells_decode_matrix() {
        let frame = encode_probe_cells_request(&[CellId(7)]);
        // Cell frames are approximate-only: EXACT alongside CELLS is
        // structurally invalid, not silently ignored.
        let mut f = frame.clone();
        f[5] = FLAG_CELLS | FLAG_EXACT;
        assert_eq!(
            decode_request(&f[4..]),
            Err("cell frames cannot request exact mode")
        );
        // A cell body is 8 bytes per point, and the count must agree.
        let mut f = frame.clone();
        f[8] = 2;
        assert_eq!(
            decode_request(&f[4..]),
            Err("probe body length disagrees with cell count")
        );
        // Reserved bytes still enforced on the cell form.
        let mut f = frame.clone();
        f[7] = 1;
        assert!(decode_request(&f[4..]).is_err());
        // An empty cell frame is legal, like an empty coordinate frame.
        let empty = encode_probe_cells_request(&[]);
        assert_eq!(
            decode_request(&empty[4..]).unwrap(),
            Request::ProbeCells { cells: vec![] }
        );
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(read_frame(&mut [].as_slice(), MAX_REQ_BODY)
            .unwrap()
            .is_none());
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        // Truncated header.
        assert!(decode_request(&[1, 0, 0]).is_err());
        // Unknown op.
        let mut frame = encode_ping_request();
        frame[4] = 99;
        assert!(decode_request(&frame[4..]).is_err());
        // Reserved bytes set.
        let mut frame = encode_probe_request(&[Coord::new(0.0, 0.0)], false);
        frame[6] = 1;
        assert!(decode_request(&frame[4..]).is_err());
        // Point count disagreeing with the body length.
        let mut frame = encode_probe_request(&[Coord::new(0.0, 0.0)], false);
        frame[8] = 2;
        assert!(decode_request(&frame[4..]).is_err());
        // Non-finite coordinate.
        let frame = encode_probe_request(&[Coord::new(f64::NAN, 0.0)], false);
        assert!(decode_request(&frame[4..]).is_err());
        // Unknown flags.
        let mut frame = encode_probe_request(&[Coord::new(0.0, 0.0)], false);
        frame[5] = 0x80;
        assert!(decode_request(&frame[4..]).is_err());
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&(u32::MAX).to_le_bytes());
        frame.extend_from_slice(&[0u8; 64]);
        let err = read_frame(&mut frame.as_slice(), MAX_REQ_BODY).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn response_roundtrip_with_refs() {
        // Two points: [] and [(5, true), (9, false)].
        let mut payload = Vec::new();
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&encode_ref(5, true).to_le_bytes());
        payload.extend_from_slice(&encode_ref(9, false).to_le_bytes());
        let frame = encode_response(OP_PROBE, STATUS_OK, 7, 2, &payload);
        let body = read_frame(&mut frame.as_slice(), usize::MAX)
            .unwrap()
            .unwrap();
        let (h, p) = decode_response(&body).unwrap();
        assert_eq!(
            h,
            RespHeader {
                op: OP_PROBE,
                status: STATUS_OK,
                epoch: 7,
                n: 2
            }
        );
        let refs = decode_probe_payload(h.n, p).unwrap();
        assert_eq!(refs, vec![vec![], vec![(5, true), (9, false)]]);
    }

    #[test]
    fn truncated_probe_payload_is_an_error() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&3u32.to_le_bytes()); // claims 3 refs
        payload.extend_from_slice(&encode_ref(1, true).to_le_bytes());
        assert!(decode_probe_payload(1, &payload).is_err());
        assert!(decode_probe_payload(2, &[0, 0, 0, 0]).is_err());
        // Trailing garbage.
        let mut ok = Vec::new();
        ok.extend_from_slice(&0u32.to_le_bytes());
        ok.push(0xFF);
        assert!(decode_probe_payload(1, &ok).is_err());
    }

    #[test]
    fn ref_encoding_roundtrip() {
        for (id, hit) in [
            (0u32, false),
            (0, true),
            (12345, true),
            ((1 << 30) - 1, false),
        ] {
            assert_eq!(decode_ref(encode_ref(id, hit)), (id, hit));
        }
    }

    #[test]
    fn counter_payload_roundtrip() {
        let counters = CounterBlock {
            probes: 42,
            accepted: 7,
            answered: 5,
            shed: 2,
            bad_frames: 1,
            busy: 3,
            batches: 4,
            swaps: 1,
            queue_high_water_lanes: 512,
            delta_applies: 1,
            watch_errors: 2,
            quarantines: 1,
            panics_contained: 1,
            window_high_water_lanes: 0,
            cache_hits: 0,
            cache_misses: 0,
            quota_sheds: 0,
        };
        let frame = encode_response(OP_PING, STATUS_OK, 3, 0, &encode_counters(&counters));
        let body = read_frame(&mut frame.as_slice(), usize::MAX)
            .unwrap()
            .unwrap();
        let (h, p) = decode_response(&body).unwrap();
        assert_eq!(h.epoch, 3);
        assert_eq!(decode_counters(p).unwrap(), counters);
        assert_eq!(counters.accepted, counters.answered + counters.shed);
        assert!(decode_counters(&[0; 103]).is_err());
        assert!(decode_counters(&[0; 105]).is_err());
        // The old nine-word block is rejected, not misread.
        assert!(decode_counters(&[0; 72]).is_err());
        // Near-miss extended sizes are rejected too.
        assert!(decode_counters(&[0; 135]).is_err());
        assert!(decode_counters(&[0; 137]).is_err());
    }

    #[test]
    fn v4_counter_block_roundtrips_and_v3_reads_zeroes() {
        let counters = CounterBlock {
            probes: 11,
            accepted: 5,
            window_high_water_lanes: 77,
            cache_hits: 1_000,
            cache_misses: 13,
            quota_sheds: 4,
            ..Default::default()
        };
        let full = encode_counters_ex(&counters);
        assert_eq!(full.len(), COUNTER_BLOCK_LEN_V4);
        assert_eq!(decode_counters(&full).unwrap(), counters);
        // A fourteen-word (v3) block still decodes; the cache and quota
        // counters read as zero.
        let got = decode_counters(&full[..COUNTER_BLOCK_LEN_V3]).unwrap();
        assert_eq!(got.window_high_water_lanes, 77);
        assert_eq!(
            (got.cache_hits, got.cache_misses, got.quota_sheds),
            (0, 0, 0)
        );
    }

    #[test]
    fn v1_counter_block_still_decodes() {
        // A version-1 server sends ten words; the three newer counters
        // read as zero, everything else lands in its field.
        let full = encode_counters(&CounterBlock {
            probes: 9,
            accepted: 8,
            answered: 6,
            shed: 2,
            delta_applies: 3,
            watch_errors: 7,
            quarantines: 7,
            panics_contained: 7,
            ..Default::default()
        });
        let got = decode_counters(&full[..COUNTER_BLOCK_LEN_V1]).unwrap();
        assert_eq!(
            (
                got.probes,
                got.accepted,
                got.answered,
                got.shed,
                got.delta_applies
            ),
            (9, 8, 6, 2, 3)
        );
        assert_eq!(
            (got.watch_errors, got.quarantines, got.panics_contained),
            (0, 0, 0)
        );
    }

    #[test]
    fn retry_hint_roundtrip_and_bounds() {
        for ms in [0u32, 1, 25, 4_999, u32::MAX] {
            let payload = encode_retry_hint(ms);
            assert_eq!(decode_retry_after(&payload).unwrap(), Some(ms));
        }
        // Version-1 rejects carry no payload: that is "no hint".
        assert_eq!(decode_retry_after(&[]).unwrap(), None);
        assert!(decode_retry_after(&[1, 2, 3]).is_err());
        assert!(decode_retry_after(&[0; 5]).is_err());

        // Derivation: no measured rate → default; otherwise queue/rate,
        // clamped.
        assert_eq!(suggest_retry_after_ms(100, 0.0), RETRY_AFTER_DEFAULT_MS);
        assert_eq!(suggest_retry_after_ms(100, -1.0), RETRY_AFTER_DEFAULT_MS);
        assert_eq!(
            suggest_retry_after_ms(100, f64::NAN),
            RETRY_AFTER_DEFAULT_MS
        );
        assert_eq!(suggest_retry_after_ms(500, 1_000.0), 500);
        assert_eq!(suggest_retry_after_ms(0, 1_000.0), RETRY_AFTER_MIN_MS);
        assert_eq!(suggest_retry_after_ms(u64::MAX, 0.001), RETRY_AFTER_MAX_MS);
    }

    #[test]
    fn counter_merge_sums_totals_and_maxes_high_water() {
        let mut a = CounterBlock {
            probes: 10,
            accepted: 5,
            answered: 4,
            shed: 1,
            queue_high_water_lanes: 700,
            swaps: 2,
            cache_hits: 90,
            cache_misses: 10,
            quota_sheds: 1,
            ..Default::default()
        };
        let b = CounterBlock {
            probes: 3,
            accepted: 2,
            answered: 2,
            busy: 1,
            queue_high_water_lanes: 512,
            window_high_water_lanes: 64,
            panics_contained: 1,
            cache_hits: 10,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.probes, 13);
        assert_eq!(a.accepted, 7);
        assert_eq!(a.answered, 6);
        assert_eq!(a.shed, 1);
        assert_eq!(a.busy, 1);
        assert_eq!(a.swaps, 2);
        assert_eq!(a.queue_high_water_lanes, 700);
        assert_eq!(a.window_high_water_lanes, 64);
        assert_eq!(a.panics_contained, 1);
        assert_eq!(
            (a.cache_hits, a.cache_misses, a.quota_sheds),
            (100, 10, 1),
            "cache and quota counters are monotonic sums"
        );
        // The reconciliation invariant survives a merge.
        assert_eq!(a.accepted, a.answered + a.shed);
    }

    #[test]
    fn dedup_refs_sorts_and_true_hit_wins() {
        let mut refs = vec![(9, false), (3, true), (9, true), (3, true), (1, false)];
        dedup_refs(&mut refs);
        assert_eq!(refs, vec![(1, false), (3, true), (9, true)]);
        let mut refs = vec![(7, false), (7, false)];
        dedup_refs(&mut refs);
        assert_eq!(refs, vec![(7, false)]);
        let mut empty: PointRefs = vec![];
        dedup_refs(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn stats_request_roundtrip() {
        let frame = encode_stats_request();
        let body = read_frame(&mut frame.as_slice(), MAX_REQ_BODY)
            .unwrap()
            .unwrap();
        assert_eq!(
            decode_request(&body).unwrap(),
            Request::Stats { histograms: false }
        );
        // The HISTOGRAMS flag decodes; any other flag bit is an error.
        let frame = encode_stats_ex_request();
        assert_eq!(
            decode_request(&frame[4..]).unwrap(),
            Request::Stats { histograms: true }
        );
        let mut bad = encode_stats_request();
        bad[5] = 2;
        assert!(decode_request(&bad[4..]).is_err());
        // PING still takes no flags at all — a version-2 server's view
        // of a flagged STATS (flags must be zero) is exactly this error.
        let mut bad = encode_ping_request();
        bad[5] = FLAG_HISTOGRAMS;
        assert!(decode_request(&bad[4..]).is_err());
    }

    #[test]
    fn dump_request_roundtrip() {
        let frame = encode_dump_request();
        let body = read_frame(&mut frame.as_slice(), MAX_REQ_BODY)
            .unwrap()
            .unwrap();
        assert_eq!(decode_request(&body).unwrap(), Request::Dump);
        let mut bad = encode_dump_request();
        bad[5] = 1;
        assert!(decode_request(&bad[4..]).is_err());
    }

    fn hist_of(values: &[u64]) -> act_obs::HistogramSnapshot {
        let h = act_obs::Histogram::new();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    #[test]
    fn stats_ex_payload_roundtrip() {
        let counters = CounterBlock {
            probes: 42,
            accepted: 7,
            answered: 7,
            queue_high_water_lanes: 900,
            window_high_water_lanes: 120,
            ..Default::default()
        };
        let hists = vec![
            StageHistogram {
                stage: STAGE_QUEUE_WAIT,
                hist: hist_of(&[150, 9_000, 2_000_000]),
            },
            StageHistogram {
                stage: STAGE_PROBE_DEPTH,
                hist: hist_of(&[0, 3, 7, 7]),
            },
            // An idle stage travels too (empty buckets).
            StageHistogram {
                stage: STAGE_REFINE,
                hist: hist_of(&[]),
            },
        ];
        let payload = encode_stats_ex_payload(&counters, &hists);
        let (c, h) = decode_stats_ex_payload(&payload).unwrap();
        assert_eq!(c, counters);
        assert_eq!(h, hists);
        assert_eq!(h[0].hist.count(), 3);
        // The plain thirteen-word encoding drops the window mark…
        let plain = decode_counters(&encode_counters(&counters)).unwrap();
        assert_eq!(plain.window_high_water_lanes, 0);
        assert_eq!(plain.queue_high_water_lanes, 900);
        // …and the extended block alone also decodes via decode_counters.
        let ex = decode_counters(&encode_counters_ex(&counters)).unwrap();
        assert_eq!(ex, counters);
    }

    #[test]
    fn stats_ex_payload_malformations_are_typed_errors() {
        let counters = CounterBlock::default();
        let hists = vec![StageHistogram {
            stage: STAGE_WALK,
            hist: hist_of(&[5, 77, 1_000_000_000]),
        }];
        let good = encode_stats_ex_payload(&counters, &hists);

        // Truncation at every boundary is rejected, never misread.
        for cut in [
            0,
            COUNTER_BLOCK_LEN_V3,
            COUNTER_BLOCK_LEN_V4,
            COUNTER_BLOCK_LEN_V4 + 2,
        ] {
            assert!(decode_stats_ex_payload(&good[..cut]).is_err(), "cut {cut}");
        }
        for cut in COUNTER_BLOCK_LEN_V4 + 4..good.len() {
            assert!(decode_stats_ex_payload(&good[..cut]).is_err(), "cut {cut}");
        }
        // Trailing bytes.
        let mut long = good.clone();
        long.push(0);
        assert!(decode_stats_ex_payload(&long).is_err());
        // Oversized histogram count.
        let mut bad = good.clone();
        bad[COUNTER_BLOCK_LEN_V4..COUNTER_BLOCK_LEN_V4 + 4]
            .copy_from_slice(&(MAX_WIRE_HISTS as u32 + 1).to_le_bytes());
        assert!(decode_stats_ex_payload(&bad).is_err());
        // Oversized bucket count.
        let mut bad = good.clone();
        let n_at = COUNTER_BLOCK_LEN_V4 + 4 + 12;
        bad[n_at..n_at + 4].copy_from_slice(&(act_obs::NUM_BUCKETS as u32 + 1).to_le_bytes());
        assert!(decode_stats_ex_payload(&bad).is_err());
        // Nonzero pad.
        let mut bad = good;
        bad[COUNTER_BLOCK_LEN_V4 + 4 + 1] = 1;
        assert!(decode_stats_ex_payload(&bad).is_err());
    }

    #[test]
    fn stage_histogram_merge_is_union() {
        let mut a = vec![
            StageHistogram {
                stage: STAGE_WALK,
                hist: hist_of(&[100, 200]),
            },
            StageHistogram {
                stage: STAGE_WRITE,
                hist: hist_of(&[50]),
            },
        ];
        let b = vec![
            StageHistogram {
                stage: STAGE_QUEUE_WAIT,
                hist: hist_of(&[9]),
            },
            StageHistogram {
                stage: STAGE_WALK,
                hist: hist_of(&[300, 400, 500]),
            },
        ];
        merge_stage_histograms(&mut a, &b);
        let stages: Vec<u8> = a.iter().map(|h| h.stage).collect();
        assert_eq!(stages, vec![STAGE_QUEUE_WAIT, STAGE_WALK, STAGE_WRITE]);
        let walk = &a[1].hist;
        assert_eq!(walk.count(), 5);
        assert_eq!(walk, &hist_of(&[100, 200, 300, 400, 500]));
        assert_eq!(stage_name(STAGE_WALK), "walk");
        assert_eq!(stage_name(250), "unknown");
    }

    #[test]
    fn admission_statuses_frame_cleanly() {
        // LOADSHED: a probe reject with zero entries, connection stays open.
        let frame = encode_response(OP_PROBE, STATUS_LOADSHED, 9, 0, &[]);
        let body = read_frame(&mut frame.as_slice(), usize::MAX)
            .unwrap()
            .unwrap();
        let (h, p) = decode_response(&body).unwrap();
        assert_eq!(
            (h.op, h.status, h.epoch, h.n),
            (OP_PROBE, STATUS_LOADSHED, 9, 0)
        );
        assert!(p.is_empty());
        // BUSY: an accept-gate reject carries op 0.
        let frame = encode_response(0, STATUS_BUSY, 2, 0, &[]);
        let body = read_frame(&mut frame.as_slice(), usize::MAX)
            .unwrap()
            .unwrap();
        let (h, _) = decode_response(&body).unwrap();
        assert_eq!((h.op, h.status), (0, STATUS_BUSY));
        assert_eq!(status_name(STATUS_LOADSHED), "LOADSHED");
        assert_eq!(status_name(STATUS_BUSY), "BUSY");
        assert_eq!(status_name(200), "UNKNOWN");
    }
}
