//! Epoch-counted snapshot hot-swap, now delta-aware.
//!
//! The serving invariant: a probe batch runs start-to-finish against
//! **one** index. [`IndexStore::current`] hands out an
//! `Arc<ServeIndex>` plus the epoch it belongs to; a concurrent swap
//! publishes a new index for *future* batches while in-flight ones
//! finish on the Arc they already hold — the rolling-restart story
//! (ship a snapshot, not a polygon set), in process. The store is a
//! `Mutex<Arc<…>>` held only long enough to clone or replace the Arc —
//! nanoseconds per batch, uncontended in practice — plus a monotonic
//! epoch counter that responses echo so clients can observe a swap.
//!
//! [`ServeIndex`] is the two-sourced serving artifact: `Mapped` is the
//! mmap-backed full snapshot the server boots from; `Owned` is a live
//! [`ActIndex`] produced by applying `ACTDLT01` delta files (see
//! [`act_core::delta`]) to the running index — a few fence edits arrive
//! in milliseconds without remapping the multi-hundred-MB base.
//!
//! [`watch_loop`] is the operator-facing half. Each poll it checks two
//! things:
//!
//! 1. **The base snapshot path.** When its signature changes and holds
//!    still for one interval, the file is opened, validated, and
//!    swapped in (a *full* reload); any delta lineage in progress is
//!    abandoned — a new base supersedes it.
//! 2. **The next delta sibling** `<base>.d<seq>` (seq = 1, 2, … within
//!    the current lineage). A stable new delta is validated against the
//!    lineage cursor ([`act_core::DeltaLink`]: base checksum, sequence,
//!    predecessor checksum), applied to a clone of the watcher's working
//!    index, and the result is published — the store flips one Arc, the
//!    epoch bumps, zero requests drop. After
//!    [`FOLD_AFTER_DELTAS`] applies the watcher *folds*: it writes the
//!    working index as a new base (sibling + rename), deletes the
//!    consumed delta files, and restarts the lineage at seq 1.
//!
//! ## Failure handling
//!
//! Three failure classes get three distinct treatments:
//!
//! * **Corrupt or wrong-chain deltas** (bit flips, truncation, wrong
//!   base, out-of-order sequence) are **quarantined**: the file is
//!   renamed to `<file>.quarantine`, the `quarantines` counter bumps,
//!   the current epoch keeps serving, and the lineage resumes as soon as
//!   a good file appears at the expected sequence. The bad bytes stay on
//!   disk for the operator; the watcher never re-reads them.
//! * **Transient IO errors** (stat/open/read failures that are not
//!   `NotFound`) are surfaced on the `watch_errors` counter and retried
//!   under **capped exponential backoff** (the poll interval doubles per
//!   consecutive error, capped at [`WATCH_BACKOFF_CAP`]); they are *not*
//!   treated as "no change" — the old behavior silently re-baselined
//!   past a flapping disk and could miss a real replacement forever.
//! * **Invalid base snapshots** keep the current index serving and are
//!   retried when the path's signature changes again.
//!
//! Prefer `write to a sibling + rename` over in-place rewrites: rename
//! is atomic on unix, and the old mapping stays valid because the old
//! inode lives until unmapped.

use act_core::{apply_delta_file, ActIndex, DeltaLink, MappedSnapshot, SnapshotError};
use act_obs::TraceRing;
use geom::Coord;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, SystemTime};

#[cfg(feature = "fault-injection")]
use crate::faults::{Faults, Site};

/// Deltas applied before the watcher folds them into a new base file.
pub const FOLD_AFTER_DELTAS: u64 = 16;

/// Ceiling on the watcher's exponential error backoff: however long a
/// disk flaps, the watcher re-checks at least this often.
pub const WATCH_BACKOFF_CAP: Duration = Duration::from_secs(5);

/// Per-call deadline budget for compaction work on the watcher's scratch
/// index: mutation bursts (delta applies with heavy tombstone load) can
/// no longer stall the apply-to-publish path behind a monolithic arena
/// rewrite — compaction proceeds in these slices and resumes across
/// polls.
pub const WATCH_COMPACT_BUDGET: Duration = Duration::from_millis(5);

/// Counters the watcher shares with the serving stack (they ride the
/// PING/STATS counter block).
#[derive(Debug, Default)]
pub struct WatchCounters {
    errors: AtomicU64,
    quarantines: AtomicU64,
}

impl WatchCounters {
    /// Transient IO errors hit while statting/reading watched files.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Corrupt/wrong-chain delta files renamed to `*.quarantine`.
    pub fn quarantines(&self) -> u64 {
        self.quarantines.load(Ordering::Relaxed)
    }

    fn note_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    fn note_quarantine(&self) {
        self.quarantines.fetch_add(1, Ordering::Relaxed);
    }
}

/// The index being served: a mapped base snapshot, or an owned live
/// index carrying delta edits on top of one. Both expose the same
/// zero-copy query view, so batch execution never cares which it holds.
// Always held behind one `Arc` per epoch, never moved or stored in
// bulk, so the variant size gap costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ServeIndex {
    /// The mmap-backed full snapshot (boot and full-reload path).
    Mapped(MappedSnapshot),
    /// A live index with delta edits applied (delta hot-apply path).
    Owned(ActIndex),
}

impl ServeIndex {
    /// The borrowed query view a probe batch runs against.
    #[inline]
    pub fn view(&self) -> act_core::ActIndexView<'_> {
        match self {
            ServeIndex::Mapped(snap) => snap.view(),
            ServeIndex::Owned(ix) => ix.as_view(),
        }
    }

    /// `(polygon id, is_true_hit)` pairs for one query point.
    pub fn lookup_refs(&self, c: Coord) -> Vec<(u32, bool)> {
        match self {
            ServeIndex::Mapped(snap) => snap.lookup_refs(c),
            ServeIndex::Owned(ix) => ix.lookup_refs(c),
        }
    }
}

/// The epoch-counted holder of the serving index.
///
/// The epoch is more than a version number clients echo: it is the
/// **invalidation key** for the hot-cell result cache
/// ([`crate::cache::HotCellCache`]). Every publish — full swap or delta
/// apply — bumps it, and cache entries carry the epoch they were filled
/// under, so after any publish every cached answer silently stops
/// matching without a scan. Anything that changes what a probe may
/// answer MUST go through [`IndexStore::swap`]/[`IndexStore::swap_owned`]
/// for exactly this reason.
#[derive(Debug)]
pub struct IndexStore {
    current: Mutex<Arc<ServeIndex>>,
    epoch: AtomicU64,
    delta_applies: AtomicU64,
}

impl IndexStore {
    /// Starts serving `snap` at epoch 1.
    pub fn new(snap: MappedSnapshot) -> IndexStore {
        IndexStore {
            current: Mutex::new(Arc::new(ServeIndex::Mapped(snap))),
            epoch: AtomicU64::new(1),
            delta_applies: AtomicU64::new(0),
        }
    }

    /// The index to answer the next batch with, and its epoch. The
    /// returned Arc keeps that index (and any file mapping behind it)
    /// alive for as long as the batch needs it, whatever swaps happen
    /// meanwhile.
    pub fn current(&self) -> (Arc<ServeIndex>, u32) {
        // Read the epoch while holding the lock so a concurrent swap
        // can't pair the old Arc with the new epoch. A poisoned lock is
        // recovered, not propagated: the guarded value is a swap-only
        // Arc that is never left half-written, so whatever panicked
        // while holding it (now survivable via the worker catch_unwind)
        // left a fully consistent store behind.
        let guard = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        let epoch = self.epoch.load(Ordering::Acquire) as u32;
        (Arc::clone(&guard), epoch)
    }

    /// Publishes a full snapshot for future batches; returns the new
    /// epoch. In-flight batches finish on whatever
    /// [`IndexStore::current`] gave them.
    pub fn swap(&self, snap: MappedSnapshot) -> u32 {
        self.publish(Arc::new(ServeIndex::Mapped(snap)))
    }

    /// Publishes an owned (delta-edited) index for future batches and
    /// counts a delta apply; returns the new epoch.
    pub fn swap_owned(&self, index: ActIndex) -> u32 {
        self.delta_applies.fetch_add(1, Ordering::Relaxed);
        self.publish(Arc::new(ServeIndex::Owned(index)))
    }

    fn publish(&self, next: Arc<ServeIndex>) -> u32 {
        // Poison recovery: see `current` — the Arc swap is atomic from
        // the store's point of view, so the value is always valid.
        let mut guard = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        *guard = next;
        epoch as u32
    }

    /// The current epoch (1 until the first swap).
    pub fn epoch(&self) -> u32 {
        self.epoch.load(Ordering::Acquire) as u32
    }

    /// Successful publishes so far (`epoch - 1`): full snapshot swaps +
    /// delta applies.
    pub fn swaps(&self) -> u64 {
        u64::from(self.epoch()).saturating_sub(1)
    }

    /// Delta files applied onto the live index so far (a subset of
    /// [`IndexStore::swaps`]).
    pub fn delta_applies(&self) -> u64 {
        self.delta_applies.load(Ordering::Relaxed)
    }
}

/// A file's change signature: inode + modified time + length + content
/// fingerprint. The inode catches the documented rename-replacement flow
/// on unix: Linux stamps mtimes from the *coarse* clock (jiffy
/// granularity, a few ms), so two same-shaped snapshots written
/// back-to-back can carry identical `(mtime, len)` — but a rename always
/// installs a different inode. The fingerprint — FNV-1a over the first
/// [`FINGERPRINT_BYTES`] bytes (the snapshot header + section table,
/// whose whole-file checksum changes with any content change) — carries
/// that guarantee to platforms with no stable file id, where the old
/// inode-hardcoded-to-0 signature missed same-length rewrites forever.
/// Still cheap: one tiny pread per poll, never a content hash of
/// hundreds of MB.
type Signature = (u64, Option<SystemTime>, u64, u64);

/// How much of the file the fingerprint covers: the `ACTSNP01` 96-byte
/// header (magic, version, checksum, section table) — any valid rewrite
/// changes the embedded checksum, so this span is change-complete.
const FINGERPRINT_BYTES: usize = 96;

#[cfg(unix)]
fn file_id(meta: &std::fs::Metadata) -> u64 {
    std::os::unix::fs::MetadataExt::ino(meta)
}

#[cfg(not(unix))]
fn file_id(_meta: &std::fs::Metadata) -> u64 {
    0 // non-unix: the content fingerprint carries the signature
}

/// FNV-1a over the first [`FINGERPRINT_BYTES`] bytes of `path`; IO
/// errors (other than interruption) surface to the caller so the watcher
/// can count and back off instead of silently degrading.
fn content_fingerprint(path: &Path) -> io::Result<u64> {
    use std::io::Read;
    let mut f = std::fs::File::open(path)?;
    let mut buf = [0u8; FINGERPRINT_BYTES];
    let mut n = 0usize;
    while n < buf.len() {
        match f.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(k) => n += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in &buf[..n] {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Ok(h)
}

/// The change signature of the file at `path` right now, distinguishing
/// the three states a poll can land in: `Ok(Some(_))` — readable,
/// here is its signature; `Ok(None)` — the file does not exist (a real
/// state, not an error: deltas legitimately appear later); `Err` — a
/// transient IO failure that says nothing about whether the file
/// changed, which callers must *not* fold into "no change".
pub fn try_signature(path: &Path) -> io::Result<Option<Signature>> {
    let meta = match std::fs::metadata(path) {
        Ok(m) => m,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let fp = match content_fingerprint(path) {
        Ok(fp) => fp,
        // Deleted between the stat and the read: genuinely absent.
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    Ok(Some((file_id(&meta), meta.modified().ok(), meta.len(), fp)))
}

/// The change signature of the snapshot file at `path` right now.
/// Capture it **before** opening the snapshot you are about to serve and
/// hand it to [`watch_loop`]: reading it later races a concurrent
/// replacement (the watcher would baseline on the new file while the
/// store still serves the old one, missing the swap forever). The
/// capture-then-open order makes the race benign — at worst the watcher
/// re-loads the file it is already serving.
///
/// Flattens transient IO errors to `None` — fine at spawn time (the
/// watcher just reloads), but the watcher itself polls through
/// [`try_signature`] so errors feed `watch_errors` and the backoff path.
pub fn snapshot_signature(path: &Path) -> Option<Signature> {
    try_signature(path).ok().flatten()
}

/// The sibling path of delta `seq` for the base snapshot at `base`:
/// `<base>.d<seq>` (e.g. `census.snap.d3`).
pub fn delta_path(base: &Path, seq: u64) -> PathBuf {
    let mut name = base
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(&format!(".d{seq}"));
    base.with_file_name(name)
}

/// The delta lineage the watcher is carrying: where the chain is, the
/// index with every applied delta folded in (shared with the store), a
/// pre-armed mutable copy for the next apply, and how many applies since
/// the last fold.
struct Lineage {
    link: DeltaLink,
    /// The published state (what the store serves once a delta landed).
    working: Arc<ServeIndex>,
    /// A private owned copy equal to `working`, primed for mutation.
    /// Deltas apply here *in place*, so the big-arena clone is not on
    /// the apply-to-publish latency path — the scratch is re-cloned from
    /// the published index right after each swap, while readers are
    /// already on the new epoch. `None` only transiently mid-apply.
    scratch: Option<ActIndex>,
    applied: u64,
}

/// Knobs for [`watch_loop_opts`]. `..WatchOptions::default()` keeps
/// call sites stable as fields grow.
pub struct WatchOptions {
    /// Steady-state poll interval (backoff multiplies it on errors).
    pub interval: Duration,
    /// Deltas applied before the watcher folds them into a new base
    /// (tests fold quickly).
    pub fold_after: u64,
    /// Shared error/quarantine counters (ride the STATS counter block).
    pub counters: Arc<WatchCounters>,
    /// Trace ring shared with the serving pipeline: swap, delta-apply,
    /// and quarantine lifecycle events are recorded unconditionally
    /// (they are rare and individually meaningful). `None` records
    /// nothing — the watcher stays trace-free when observability is off.
    pub trace: Option<Arc<TraceRing>>,
    /// Armed fault plan, when chaos-testing the watcher.
    #[cfg(feature = "fault-injection")]
    pub faults: Option<Arc<Faults>>,
}

impl Default for WatchOptions {
    fn default() -> WatchOptions {
        WatchOptions {
            interval: Duration::from_millis(500),
            fold_after: FOLD_AFTER_DELTAS,
            counters: Arc::new(WatchCounters::default()),
            trace: None,
            #[cfg(feature = "fault-injection")]
            faults: None,
        }
    }
}

/// Sleeps `total` in small slices so a graceful drain never waits a
/// whole poll interval for the watcher to join. Returns `false` when
/// shutdown fired mid-sleep.
fn sleep_sliced(total: Duration, shutdown: &AtomicBool) -> bool {
    let wake = std::time::Instant::now() + total;
    loop {
        let left = wake.saturating_duration_since(std::time::Instant::now());
        if left.is_zero() {
            return true;
        }
        std::thread::sleep(left.min(Duration::from_millis(10)));
        if shutdown.load(Ordering::Acquire) {
            return false;
        }
    }
}

/// The pause before the next poll after `streak` consecutive transient
/// errors: `interval × 2^(streak-1)`, capped at [`WATCH_BACKOFF_CAP`]
/// but never shorter than the configured interval.
fn backoff(interval: Duration, streak: u32) -> Duration {
    let shift = streak.saturating_sub(1).min(8);
    interval
        .saturating_mul(1u32 << shift)
        .min(WATCH_BACKOFF_CAP)
        .max(interval)
}

/// A signature poll, routed through the fault plan when one is armed.
fn poll_signature(path: &Path, _opts: &WatchOptions) -> io::Result<Option<Signature>> {
    #[cfg(feature = "fault-injection")]
    if let Some(f) = &_opts.faults {
        if f.check(Site::WatchStat).is_some() {
            return Err(f.injected_error(Site::WatchStat));
        }
    }
    try_signature(path)
}

/// A base-snapshot open attempt, routed through the fault plan.
fn open_snapshot(path: &Path, _opts: &WatchOptions) -> Result<MappedSnapshot, SnapshotError> {
    #[cfg(feature = "fault-injection")]
    if let Some(f) = &_opts.faults {
        if f.check(Site::SnapshotOpen).is_some() {
            return Err(SnapshotError::Io(f.injected_error(Site::SnapshotOpen)));
        }
    }
    MappedSnapshot::open(path)
}

/// A delta apply attempt, routed through the fault plan.
fn apply_delta(
    next: &mut ActIndex,
    dpath: &Path,
    link: DeltaLink,
    _opts: &WatchOptions,
) -> Result<DeltaLink, SnapshotError> {
    #[cfg(feature = "fault-injection")]
    if let Some(f) = &_opts.faults {
        if f.check(Site::DeltaOpen).is_some() {
            return Err(SnapshotError::Io(f.injected_error(Site::DeltaOpen)));
        }
    }
    apply_delta_file(next, dpath, link)
}

/// Renames a rejected delta to `<file>.quarantine` so the watcher never
/// re-reads the bad bytes and the operator can inspect them.
fn quarantine_delta(dpath: &Path) -> io::Result<PathBuf> {
    let mut name = dpath
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(".quarantine");
    let qpath = dpath.with_file_name(name);
    std::fs::rename(dpath, &qpath)?;
    Ok(qpath)
}

/// Spends the idle-poll compaction budget on the lineage scratch: delta
/// bursts with heavy tombstone load shed their arena waste a slice at a
/// time between polls instead of stalling an apply behind a monolithic
/// rewrite.
fn idle_compact(lineage: &mut Option<Lineage>) {
    if let Some(lin) = lineage {
        if let Some(scratch) = lin.scratch.as_mut() {
            scratch.compact_deadline(std::time::Instant::now() + WATCH_COMPACT_BUDGET);
        }
    }
}

/// Polls `path` every `interval` until `shutdown`, swapping validated
/// new snapshots — and applying validated sibling delta files — into
/// `store`. `initial` is the signature of the file the store is
/// currently serving, captured by the caller **before** it opened that
/// snapshot (see [`snapshot_signature`]). Returns the number of
/// successful publishes (full swaps + delta applies).
///
/// A change is acted on only after its signature holds still for one
/// full interval (an in-place writer mid-copy keeps moving the mtime);
/// a signature whose load failed *validation* is remembered and not
/// retried until it changes again. Transient IO failures are different:
/// they are counted, retried under capped exponential backoff, and never
/// mistaken for "no change" (see the module docs' failure taxonomy).
pub fn watch_loop(
    path: &Path,
    interval: Duration,
    store: &IndexStore,
    shutdown: &AtomicBool,
    initial: Option<Signature>,
) -> u64 {
    watch_loop_opts(
        path,
        store,
        shutdown,
        initial,
        WatchOptions {
            interval,
            ..WatchOptions::default()
        },
    )
}

/// [`watch_loop`] with every knob exposed (see [`WatchOptions`]).
pub fn watch_loop_opts(
    path: &Path,
    store: &IndexStore,
    shutdown: &AtomicBool,
    initial: Option<Signature>,
    opts: WatchOptions,
) -> u64 {
    let interval = opts.interval;
    let fold_after = opts.fold_after;
    let mut loaded_sig = initial;
    let mut failed_sig: Option<Signature> = None;
    let mut prev_poll = loaded_sig;
    let mut lineage: Option<Lineage> = None;
    let mut delta_prev_poll: Option<Signature> = None;
    let mut delta_failed: Option<Signature> = None;
    let mut publishes = 0u64;
    // Consecutive transient-error polls; doubles the pause (capped).
    let mut err_streak = 0u32;
    while !shutdown.load(Ordering::Acquire) {
        let pause = if err_streak == 0 {
            interval
        } else {
            backoff(interval, err_streak)
        };
        if !sleep_sliced(pause, shutdown) {
            return publishes;
        }

        // 1. The base path: a changed, stable, valid snapshot is a full
        //    reload and supersedes any delta lineage in progress.
        let sig = match poll_signature(path, &opts) {
            Ok(s) => s,
            Err(e) => {
                // Says nothing about whether the file changed — count it
                // and retry under backoff rather than re-baselining.
                opts.counters.note_error();
                err_streak = err_streak.saturating_add(1);
                eprintln!("act-serve: watch stat of {path:?} failed ({e}); backing off");
                continue;
            }
        };
        let stable = sig == prev_poll;
        prev_poll = sig;
        if let Some(sig) = sig {
            if Some(sig) != loaded_sig && Some(sig) != failed_sig && stable {
                match open_snapshot(path, &opts) {
                    Ok(snap) => {
                        let epoch = store.swap(snap);
                        publishes += 1;
                        loaded_sig = Some(sig);
                        failed_sig = None;
                        lineage = None;
                        delta_prev_poll = None;
                        delta_failed = None;
                        err_streak = 0;
                        if let Some(t) = &opts.trace {
                            t.always("swap", &[("epoch", u64::from(epoch))]);
                        }
                        eprintln!("act-serve: hot-swapped snapshot {path:?} (epoch {epoch})");
                        continue;
                    }
                    Err(SnapshotError::Io(e)) => {
                        // Short/failed read: the bytes were never
                        // judged, so do NOT remember this signature as
                        // failed — back off and re-attempt the open.
                        opts.counters.note_error();
                        err_streak = err_streak.saturating_add(1);
                        eprintln!("act-serve: snapshot read at {path:?} failed ({e}); backing off");
                        continue;
                    }
                    Err(e) => {
                        // Invalid bytes: keep serving the old snapshot;
                        // retry when the signature changes again.
                        failed_sig = Some(sig);
                        eprintln!(
                            "act-serve: new snapshot at {path:?} rejected ({e}); keeping current"
                        );
                    }
                }
            }
        }
        // Base vanished or unchanged: look for the next delta sibling.

        // 2. The next delta in the lineage (seq 1 when none is open).
        let next_seq = lineage.as_ref().map_or(1, |l| l.link.next_seq);
        let dpath = delta_path(path, next_seq);
        let dsig = match poll_signature(&dpath, &opts) {
            Ok(s) => s,
            Err(e) => {
                opts.counters.note_error();
                err_streak = err_streak.saturating_add(1);
                eprintln!("act-serve: watch stat of {dpath:?} failed ({e}); backing off");
                continue;
            }
        };
        let dstable = dsig == delta_prev_poll;
        delta_prev_poll = dsig;
        let Some(dsig) = dsig else {
            // Fully idle poll: no pending work, clean IO.
            err_streak = 0;
            idle_compact(&mut lineage);
            continue;
        };
        if Some(dsig) == delta_failed || !dstable {
            err_streak = 0;
            continue;
        }

        // Open the lineage on first use: the working copy starts from
        // the mapped base the store is serving.
        if lineage.is_none() {
            let (cur, _) = store.current();
            let ServeIndex::Mapped(snap) = &*cur else {
                continue; // unreachable: no lineage means mapped base
            };
            let mut owned = snap.to_owned_index();
            // One-time: pay the live-id scan now so every apply is as
            // fast as the steady state.
            owned.prime_mutations();
            lineage = Some(Lineage {
                link: DeltaLink::for_base(snap.checksum()),
                scratch: Some(owned.clone()),
                working: Arc::new(ServeIndex::Owned(owned)),
                applied: 0,
            });
        }
        let lin = lineage.as_mut().expect("opened above");

        // Apply in place on the pre-armed scratch; on success it is
        // published as-is and a fresh scratch is cloned afterwards —
        // keeping the clone off the apply-to-publish latency path.
        let mut next = lin
            .scratch
            .take()
            .expect("scratch is armed between applies");
        match apply_delta(&mut next, &dpath, lin.link, &opts) {
            Ok(new_link) => {
                let epoch = store.swap_owned(next);
                publishes += 1;
                lin.link = new_link;
                lin.working = store.current().0;
                // Re-arm: readers are already on the new epoch while
                // this clone runs.
                let ServeIndex::Owned(cur) = &*lin.working else {
                    unreachable!("swap_owned published an owned index");
                };
                lin.scratch = Some(cur.clone());
                lin.applied += 1;
                delta_prev_poll = None;
                delta_failed = None;
                err_streak = 0;
                if let Some(t) = &opts.trace {
                    t.always(
                        "delta_apply",
                        &[
                            ("epoch", u64::from(epoch)),
                            ("seq", next_seq),
                            ("lineage", lin.applied),
                        ],
                    );
                }
                eprintln!(
                    "act-serve: applied delta {dpath:?} (epoch {epoch}, \
                     {} in lineage)",
                    lin.applied
                );
                if lin.applied >= fold_after {
                    match fold_lineage(path, lin) {
                        Ok(()) => {
                            // The fold rewrote the base file with
                            // identical probe semantics: baseline the
                            // watcher on it without reloading.
                            loaded_sig = snapshot_signature(path);
                            prev_poll = loaded_sig;
                            failed_sig = None;
                            eprintln!("act-serve: folded {fold_after} deltas into {path:?}");
                        }
                        Err(e) => {
                            // Fold is best-effort: the lineage keeps
                            // extending and the next apply retries it.
                            lin.applied = fold_after.saturating_sub(1);
                            eprintln!("act-serve: delta fold failed ({e}); will retry");
                        }
                    }
                }
            }
            Err(e) => {
                // A rejected delta may have left the scratch prefix-
                // applied (per-op failures mutate before erroring), so
                // rebuild it from the published state. `drop(next)`
                // first: holding old + published + new scratch at once
                // would spike memory to three arenas.
                drop(next);
                let ServeIndex::Owned(cur) = &*lin.working else {
                    unreachable!("lineage working index is always owned");
                };
                lin.scratch = Some(cur.clone());
                if matches!(e, SnapshotError::Io(_)) {
                    // Short/failed read: no verdict on the bytes. Leave
                    // `delta_prev_poll` standing so the very next poll
                    // (after backoff) retries the same stable file.
                    opts.counters.note_error();
                    err_streak = err_streak.saturating_add(1);
                    eprintln!("act-serve: delta read at {dpath:?} failed ({e}); backing off");
                } else {
                    // Corrupt or wrong-chain bytes: quarantine so the
                    // lineage resumes the moment a good file lands at
                    // this sequence, and the bad file is never re-read.
                    match quarantine_delta(&dpath) {
                        Ok(qpath) => {
                            opts.counters.note_quarantine();
                            delta_prev_poll = None;
                            delta_failed = None;
                            err_streak = 0;
                            if let Some(t) = &opts.trace {
                                t.always("quarantine", &[("seq", next_seq)]);
                            }
                            eprintln!(
                                "act-serve: delta at {dpath:?} rejected ({e}); \
                                 quarantined to {qpath:?}"
                            );
                        }
                        Err(re) => {
                            // Can't move it aside: fall back to the old
                            // remember-and-skip behavior.
                            delta_failed = Some(dsig);
                            eprintln!(
                                "act-serve: delta at {dpath:?} rejected ({e}); \
                                 quarantine failed ({re}); ignoring until it changes"
                            );
                        }
                    }
                }
            }
        }
    }
    publishes
}

/// Folds the lineage's working index into a new base snapshot: write to
/// a sibling, fsync, rename over the base path, delete the consumed
/// delta files, and restart the chain from the new base checksum.
fn fold_lineage(base: &Path, lin: &mut Lineage) -> Result<(), act_core::SnapshotError> {
    let ServeIndex::Owned(working) = &*lin.working else {
        unreachable!("lineage working index is always owned");
    };
    let mut bytes = Vec::new();
    working.save_snapshot(&mut bytes)?;
    let new_sum = act_core::header_checksum(&bytes).expect("save_snapshot wrote a whole header");
    let tmp = base.with_extension("fold-tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, base)?;
    for seq in 1..lin.link.next_seq {
        let _ = std::fs::remove_file(delta_path(base, seq));
    }
    lin.link = DeltaLink::for_base(new_sum);
    lin.applied = 0;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_core::{save_delta_file, DeltaOp};
    use geom::{Polygon, Ring};

    fn square(cx: f64, cy: f64, half: f64) -> Polygon {
        Polygon::new(
            Ring::new(vec![
                Coord::new(cx - half, cy - half),
                Coord::new(cx + half, cy - half),
                Coord::new(cx + half, cy + half),
                Coord::new(cx - half, cy + half),
            ]),
            vec![],
        )
    }

    fn snap_file(name: &str, polys: &[Polygon]) -> std::path::PathBuf {
        let idx = act_core::ActIndex::build(polys, 15.0).unwrap();
        let mut bytes = Vec::new();
        idx.save_snapshot(&mut bytes).unwrap();
        let mut p = std::env::temp_dir();
        p.push(format!("act-swap-test-{}-{name}.snap", std::process::id()));
        std::fs::write(&p, bytes).unwrap();
        p
    }

    #[test]
    fn swap_bumps_epoch_and_keeps_old_arcs_alive() {
        let a = snap_file("a", &[square(-74.0, 40.7, 0.02)]);
        let b = snap_file("b", &[square(-73.9, 40.7, 0.02)]);
        let store = IndexStore::new(MappedSnapshot::open(&a).unwrap());
        let (old, e1) = store.current();
        assert_eq!(e1, 1);
        let inside_a = Coord::new(-74.0, 40.7);
        assert!(!old.lookup_refs(inside_a).is_empty());

        let e2 = store.swap(MappedSnapshot::open(&b).unwrap());
        assert_eq!(e2, 2);
        assert_eq!(store.epoch(), 2);
        assert_eq!(store.swaps(), 1);
        assert_eq!(store.delta_applies(), 0);
        let (new, e) = store.current();
        assert_eq!(e, 2);
        // New snapshot answers differently; the old Arc still answers as
        // before (in-flight batches are undisturbed).
        assert!(new.lookup_refs(inside_a).is_empty());
        assert!(!old.lookup_refs(inside_a).is_empty());
        std::fs::remove_file(&a).unwrap();
        std::fs::remove_file(&b).unwrap();
    }

    /// The poisoned-lock satellite regression: a panic raised while the
    /// store's mutex is held (survivable since the worker loops run
    /// probes under `catch_unwind`) used to poison the lock and turn
    /// every later `current()`/`swap()` into a second panic — one bad
    /// batch killed the whole serving process. Recovery via
    /// `PoisonError::into_inner` is sound because the guarded `Arc` is
    /// replaced atomically and never left half-written.
    #[test]
    fn store_survives_panic_under_lock() {
        let a = snap_file("poison-a", &[square(-74.0, 40.7, 0.02)]);
        let b = snap_file("poison-b", &[square(-73.9, 40.7, 0.02)]);
        let store = Arc::new(IndexStore::new(MappedSnapshot::open(&a).unwrap()));

        // Inject a panic while the lock is held, on another thread so
        // the unwind poisons the mutex.
        let poisoner = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let _guard = store.current.lock().unwrap();
                panic!("injected panic while holding the index store lock");
            })
        };
        assert!(poisoner.join().is_err(), "the injected panic must fire");
        assert!(store.current.is_poisoned(), "the lock must be poisoned");

        // Probing and swapping must both still work.
        let (idx, e1) = store.current();
        assert_eq!(e1, 1);
        assert!(!idx.lookup_refs(Coord::new(-74.0, 40.7)).is_empty());
        let e2 = store.swap(MappedSnapshot::open(&b).unwrap());
        assert_eq!(e2, 2);
        let (idx, e) = store.current();
        assert_eq!(e, 2);
        assert!(!idx.lookup_refs(Coord::new(-73.9, 40.7)).is_empty());
        std::fs::remove_file(&a).unwrap();
        std::fs::remove_file(&b).unwrap();
    }

    #[test]
    fn watcher_swaps_on_change_and_survives_garbage() {
        let path = snap_file("watch", &[square(-74.0, 40.7, 0.02)]);
        let store = Arc::new(IndexStore::new(MappedSnapshot::open(&path).unwrap()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let initial = snapshot_signature(&path);
        let handle = {
            let (store, shutdown, path) = (store.clone(), shutdown.clone(), path.clone());
            std::thread::spawn(move || {
                watch_loop(&path, Duration::from_millis(10), &store, &shutdown, initial)
            })
        };

        // Garbage dropped on the path must not take the store down.
        // Replace via sibling + rename: truncating the live file in
        // place would invalidate the store's active mapping (SIGBUS on
        // the next probe) — exactly what the module docs forbid.
        let garbage = path.with_extension("garbage");
        std::fs::write(&garbage, b"not a snapshot at all").unwrap();
        std::fs::rename(&garbage, &path).unwrap();
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(store.epoch(), 1, "garbage must not swap");

        // A valid replacement snapshot is picked up.
        let b = snap_file("watch-b", &[square(-73.9, 40.7, 0.02)]);
        std::fs::rename(&b, &path).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while store.epoch() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(store.epoch(), 2, "watcher must pick up the new snapshot");

        shutdown.store(true, Ordering::Release);
        let swaps = handle.join().unwrap();
        assert_eq!(swaps, 1);
        std::fs::remove_file(&path).unwrap();
    }

    /// The satellite regression: a same-length rewrite whose `(mtime,
    /// len)` may collide must still change the signature, on every
    /// platform, via the content fingerprint (the inode is forced out of
    /// the comparison to model non-unix).
    #[test]
    fn fingerprint_catches_same_length_rewrite() {
        // Two *valid* snapshots of the same polygon set: identical
        // length and shape, different content (the META section persists
        // build wall-times, so the embedded checksum differs) — exactly
        // the same-length rewrite a metadata-only signature misses.
        let polys = [square(-74.0, 40.7, 0.02)];
        let a = snap_file("fp-a", &polys);
        let bytes_b = {
            let idx = act_core::ActIndex::build(&polys, 15.0).unwrap();
            let mut b = Vec::new();
            idx.save_snapshot(&mut b).unwrap();
            b
        };
        let bytes_a = std::fs::read(&a).unwrap();
        assert_eq!(bytes_a.len(), bytes_b.len(), "same build, same length");
        assert_ne!(bytes_a, bytes_b, "wall-time meta must differ");

        let sig_a = snapshot_signature(&a).unwrap();
        // Rewrite a's *content* in place (same inode, same length) —
        // on a coarse-clock filesystem the mtime can also collide, so
        // only the fingerprint reliably separates the signatures.
        std::fs::write(&a, &bytes_b).unwrap();
        let sig_a2 = snapshot_signature(&a).unwrap();
        assert_eq!(sig_a.0, sig_a2.0, "in-place rewrite keeps the inode");
        assert_eq!(sig_a.2, sig_a2.2, "lengths match by construction");
        assert_ne!(
            sig_a.3, sig_a2.3,
            "content fingerprint must catch a same-length rewrite"
        );
        std::fs::remove_file(&a).unwrap();
    }

    /// Delta files beside the base are validated, applied in lineage
    /// order without remapping the base, and folded into a new base once
    /// the threshold is crossed; garbage deltas are rejected harmlessly.
    // The `..default()` spread is needless only when `fault-injection`
    // is off (it supplies the cfg'd `faults` field when it is on).
    #[allow(clippy::needless_update)]
    #[test]
    fn watcher_applies_deltas_and_folds() {
        let path = snap_file("delta", &[square(-74.0, 40.7, 0.02)]);
        let base_sum = act_core::header_checksum(&std::fs::read(&path).unwrap()).unwrap();
        let store = Arc::new(IndexStore::new(MappedSnapshot::open(&path).unwrap()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(WatchCounters::default());
        let initial = snapshot_signature(&path);
        let handle = {
            let (store, shutdown, path) = (store.clone(), shutdown.clone(), path.clone());
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || {
                // fold_after = 2 so this test exercises the fold.
                watch_loop_opts(
                    &path,
                    &store,
                    &shutdown,
                    initial,
                    WatchOptions {
                        interval: Duration::from_millis(10),
                        fold_after: 2,
                        counters,
                        ..WatchOptions::default()
                    },
                )
            })
        };
        let wait_epoch = |want: u32| {
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while store.epoch() < want && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            assert_eq!(store.epoch(), want, "epoch did not reach {want}");
        };

        // Garbage where delta 1 should be: rejected, nothing swaps, the
        // bad bytes are quarantined out of the way.
        std::fs::write(delta_path(&path, 1), b"junk").unwrap();
        let qpath = {
            let d = delta_path(&path, 1);
            let mut name = d.file_name().unwrap().to_string_lossy().into_owned();
            name.push_str(".quarantine");
            d.with_file_name(name)
        };
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while counters.quarantines() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(store.epoch(), 1, "garbage delta must not publish");
        assert_eq!(counters.quarantines(), 1);
        assert!(qpath.exists(), "rejected delta must be renamed aside");
        assert!(
            !delta_path(&path, 1).exists(),
            "quarantine must clear the lineage slot"
        );

        // Delta 1: add a polygon in the slot the quarantine cleared.
        let link = DeltaLink::for_base(base_sum);
        let add = DeltaOp::Insert {
            id: 7,
            polygon: square(-73.9, 40.7, 0.02),
        };
        let (link, _) = save_delta_file(&[add], link, &delta_path(&path, 1)).unwrap();
        wait_epoch(2);
        assert_eq!(store.delta_applies(), 1);
        let (idx, _) = store.current();
        assert!(
            matches!(&*idx, ServeIndex::Owned(_)),
            "delta apply must not remap"
        );
        assert!(!idx.lookup_refs(Coord::new(-73.9, 40.7)).is_empty());
        assert!(!idx.lookup_refs(Coord::new(-74.0, 40.7)).is_empty());

        // Delta 2: remove the original polygon. This crosses
        // fold_after = 2, so the base file is rewritten and deltas are
        // deleted.
        let rm = DeltaOp::Remove { id: 0 };
        save_delta_file(&[rm], link, &delta_path(&path, 2)).unwrap();
        wait_epoch(3);
        assert_eq!(store.delta_applies(), 2);
        let (idx, _) = store.current();
        assert!(idx.lookup_refs(Coord::new(-74.0, 40.7)).is_empty());
        assert!(!idx.lookup_refs(Coord::new(-73.9, 40.7)).is_empty());

        // The fold: consumed delta files disappear, the rewritten base
        // answers like the live index, and the watcher does NOT reload
        // it (epoch stays put).
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while (delta_path(&path, 1).exists() || delta_path(&path, 2).exists())
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            !delta_path(&path, 1).exists(),
            "fold must delete consumed deltas"
        );
        assert!(!delta_path(&path, 2).exists());
        let folded = MappedSnapshot::open(&path).unwrap();
        assert!(folded.lookup_refs(Coord::new(-74.0, 40.7)).is_empty());
        assert!(!folded.lookup_refs(Coord::new(-73.9, 40.7)).is_empty());
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(store.epoch(), 3, "fold must not trigger a reload");

        // The new lineage restarts at seq 1 against the folded base.
        let folded_sum = act_core::header_checksum(&std::fs::read(&path).unwrap()).unwrap();
        let link = DeltaLink::for_base(folded_sum);
        let add2 = DeltaOp::Insert {
            id: 9,
            polygon: square(-73.8, 40.7, 0.02),
        };
        save_delta_file(&[add2], link, &delta_path(&path, 1)).unwrap();
        wait_epoch(4);
        let (idx, _) = store.current();
        assert!(!idx.lookup_refs(Coord::new(-73.8, 40.7)).is_empty());

        shutdown.store(true, Ordering::Release);
        let publishes = handle.join().unwrap();
        assert_eq!(publishes, 3);
        let _ = std::fs::remove_file(delta_path(&path, 1));
        let _ = std::fs::remove_file(&qpath);
        std::fs::remove_file(&path).unwrap();
    }

    /// A transient stat failure must be counted — not folded into "no
    /// change" — and polling must resume once the fault clears. Uses the
    /// fault plan (a deterministic stand-in for a flapping disk).
    #[cfg(feature = "fault-injection")]
    #[test]
    fn watcher_counts_stat_errors_and_recovers() {
        use crate::faults::{FaultPlan, FaultSpec};
        let path = snap_file("staterr", &[square(-74.0, 40.7, 0.02)]);
        let store = Arc::new(IndexStore::new(MappedSnapshot::open(&path).unwrap()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(WatchCounters::default());
        // The first three base-path stats fail; everything after is
        // clean, so the replacement written below still swaps in.
        let faults = FaultPlan::new(11)
            .with(FaultSpec {
                site: crate::faults::Site::WatchStat,
                first: 1,
                every: 1,
                count: 3,
            })
            .arm();
        let initial = snapshot_signature(&path);
        let handle = {
            let (store, shutdown, path) = (store.clone(), shutdown.clone(), path.clone());
            let (counters, faults) = (Arc::clone(&counters), Arc::clone(&faults));
            std::thread::spawn(move || {
                watch_loop_opts(
                    &path,
                    &store,
                    &shutdown,
                    initial,
                    WatchOptions {
                        interval: Duration::from_millis(5),
                        counters,
                        faults: Some(faults),
                        ..WatchOptions::default()
                    },
                )
            })
        };

        let b = snap_file("staterr-b", &[square(-73.9, 40.7, 0.02)]);
        std::fs::rename(&b, &path).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while store.epoch() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            store.epoch(),
            2,
            "watcher must recover after the fault clears"
        );
        assert_eq!(
            counters.errors(),
            3,
            "each injected stat failure is counted"
        );
        assert_eq!(counters.quarantines(), 0);

        shutdown.store(true, Ordering::Release);
        handle.join().unwrap();
        std::fs::remove_file(&path).unwrap();
    }
}
