//! Epoch-counted snapshot hot-swap.
//!
//! The serving invariant: a probe batch runs start-to-finish against
//! **one** snapshot. [`IndexStore::current`] hands out an
//! `Arc<MappedSnapshot>` plus the epoch it belongs to; a concurrent
//! [`IndexStore::swap`] publishes a new snapshot for *future* batches
//! while in-flight ones finish on the Arc they already hold — the
//! rolling-restart story (ship a snapshot, not a polygon set), in
//! process. The store is a `Mutex<Arc<…>>` held only long enough to
//! clone or replace the Arc — nanoseconds per batch, uncontended in
//! practice — plus a monotonic epoch counter that responses echo so
//! clients can observe a swap.
//!
//! [`watch_loop`] is the operator-facing half: poll a snapshot path's
//! `(mtime, len)` signature, and when it changes and holds still for one
//! interval, open + validate the new file and swap it in. Validation
//! failures (half-written file, wrong version, corruption) leave the
//! current snapshot serving and are retried only when the signature
//! changes again — dropping a bad file on the path can never take the
//! server down. Prefer `write to a sibling + rename` over in-place
//! rewrites: rename is atomic on unix, and the old mapping stays valid
//! because the old inode lives until unmapped.

use act_core::MappedSnapshot;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};

/// The epoch-counted holder of the serving snapshot.
#[derive(Debug)]
pub struct IndexStore {
    current: Mutex<Arc<MappedSnapshot>>,
    epoch: AtomicU64,
}

impl IndexStore {
    /// Starts serving `snap` at epoch 1.
    pub fn new(snap: MappedSnapshot) -> IndexStore {
        IndexStore {
            current: Mutex::new(Arc::new(snap)),
            epoch: AtomicU64::new(1),
        }
    }

    /// The snapshot to answer the next batch with, and its epoch. The
    /// returned Arc keeps that snapshot (and its file mapping) alive for
    /// as long as the batch needs it, whatever swaps happen meanwhile.
    pub fn current(&self) -> (Arc<MappedSnapshot>, u32) {
        // Read the epoch while holding the lock so a concurrent swap
        // can't pair the old Arc with the new epoch.
        let guard = self.current.lock().expect("index store poisoned");
        let epoch = self.epoch.load(Ordering::Acquire) as u32;
        (Arc::clone(&guard), epoch)
    }

    /// Publishes `snap` for future batches; returns the new epoch.
    /// In-flight batches finish on whatever [`IndexStore::current`] gave
    /// them.
    pub fn swap(&self, snap: MappedSnapshot) -> u32 {
        let mut guard = self.current.lock().expect("index store poisoned");
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        *guard = Arc::new(snap);
        epoch as u32
    }

    /// The current epoch (1 until the first swap).
    pub fn epoch(&self) -> u32 {
        self.epoch.load(Ordering::Acquire) as u32
    }

    /// Successful hot-swaps so far (`epoch - 1`).
    pub fn swaps(&self) -> u64 {
        u64::from(self.epoch()).saturating_sub(1)
    }
}

/// A file's change signature: inode + modified time + length. The inode
/// is the load-bearing part for the documented rename-replacement flow:
/// Linux stamps mtimes from the *coarse* clock (jiffy granularity, a few
/// ms), so two same-shaped snapshots written back-to-back can carry
/// identical `(mtime, len)` — but a rename always installs a different
/// inode. mtime + len still catch in-place rewrites. No content hashing:
/// a poll must stay cheap at hundreds of MB.
type Signature = (u64, Option<SystemTime>, u64);

#[cfg(unix)]
fn file_id(meta: &std::fs::Metadata) -> u64 {
    std::os::unix::fs::MetadataExt::ino(meta)
}

#[cfg(not(unix))]
fn file_id(_meta: &std::fs::Metadata) -> u64 {
    0 // non-unix: fall back to mtime + len only
}

/// The change signature of the snapshot file at `path` right now.
/// Capture it **before** opening the snapshot you are about to serve and
/// hand it to [`watch_loop`]: reading it later races a concurrent
/// replacement (the watcher would baseline on the new file while the
/// store still serves the old one, missing the swap forever). The
/// capture-then-open order makes the race benign — at worst the watcher
/// re-loads the file it is already serving.
pub fn snapshot_signature(path: &Path) -> Option<Signature> {
    let meta = std::fs::metadata(path).ok()?;
    Some((file_id(&meta), meta.modified().ok(), meta.len()))
}

/// Polls `path` every `interval` until `shutdown`, swapping validated
/// new snapshots into `store`. `initial` is the signature of the file
/// the store is currently serving, captured by the caller **before** it
/// opened that snapshot (see [`snapshot_signature`]). Returns the number
/// of successful swaps.
///
/// A change is acted on only after the signature holds still for one
/// full interval (an in-place writer mid-copy keeps moving the mtime);
/// a signature whose load failed is remembered and not retried until it
/// changes again.
pub fn watch_loop(
    path: &Path,
    interval: Duration,
    store: &IndexStore,
    shutdown: &AtomicBool,
    initial: Option<Signature>,
) -> u64 {
    let mut loaded_sig = initial;
    let mut failed_sig: Option<Signature> = None;
    let mut prev_poll = loaded_sig;
    let mut swaps = 0u64;
    while !shutdown.load(Ordering::Acquire) {
        // Sleep in small slices so a graceful drain never waits a whole
        // poll interval for this thread to join.
        let wake = std::time::Instant::now() + interval;
        loop {
            let left = wake.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                break;
            }
            std::thread::sleep(left.min(Duration::from_millis(10)));
            if shutdown.load(Ordering::Acquire) {
                return swaps;
            }
        }
        let sig = snapshot_signature(path);
        let stable = sig == prev_poll;
        prev_poll = sig;
        let Some(sig) = sig else { continue }; // vanished: keep serving
        if Some(sig) == loaded_sig || Some(sig) == failed_sig || !stable {
            continue;
        }
        match MappedSnapshot::open(path) {
            Ok(snap) => {
                let epoch = store.swap(snap);
                swaps += 1;
                loaded_sig = Some(sig);
                failed_sig = None;
                eprintln!("act-serve: hot-swapped snapshot {path:?} (epoch {epoch})");
            }
            Err(e) => {
                // Keep serving the old snapshot; retry only on change.
                failed_sig = Some(sig);
                eprintln!("act-serve: new snapshot at {path:?} rejected ({e}); keeping current");
            }
        }
    }
    swaps
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::{Coord, Polygon, Ring};

    fn square(cx: f64, cy: f64, half: f64) -> Polygon {
        Polygon::new(
            Ring::new(vec![
                Coord::new(cx - half, cy - half),
                Coord::new(cx + half, cy - half),
                Coord::new(cx + half, cy + half),
                Coord::new(cx - half, cy + half),
            ]),
            vec![],
        )
    }

    fn snap_file(name: &str, polys: &[Polygon]) -> std::path::PathBuf {
        let idx = act_core::ActIndex::build(polys, 15.0).unwrap();
        let mut bytes = Vec::new();
        idx.save_snapshot(&mut bytes).unwrap();
        let mut p = std::env::temp_dir();
        p.push(format!("act-swap-test-{}-{name}.snap", std::process::id()));
        std::fs::write(&p, bytes).unwrap();
        p
    }

    #[test]
    fn swap_bumps_epoch_and_keeps_old_arcs_alive() {
        let a = snap_file("a", &[square(-74.0, 40.7, 0.02)]);
        let b = snap_file("b", &[square(-73.9, 40.7, 0.02)]);
        let store = IndexStore::new(MappedSnapshot::open(&a).unwrap());
        let (old, e1) = store.current();
        assert_eq!(e1, 1);
        let inside_a = Coord::new(-74.0, 40.7);
        assert!(!old.lookup_refs(inside_a).is_empty());

        let e2 = store.swap(MappedSnapshot::open(&b).unwrap());
        assert_eq!(e2, 2);
        assert_eq!(store.epoch(), 2);
        assert_eq!(store.swaps(), 1);
        let (new, e) = store.current();
        assert_eq!(e, 2);
        // New snapshot answers differently; the old Arc still answers as
        // before (in-flight batches are undisturbed).
        assert!(new.lookup_refs(inside_a).is_empty());
        assert!(!old.lookup_refs(inside_a).is_empty());
        std::fs::remove_file(&a).unwrap();
        std::fs::remove_file(&b).unwrap();
    }

    #[test]
    fn watcher_swaps_on_change_and_survives_garbage() {
        let path = snap_file("watch", &[square(-74.0, 40.7, 0.02)]);
        let store = Arc::new(IndexStore::new(MappedSnapshot::open(&path).unwrap()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let initial = snapshot_signature(&path);
        let handle = {
            let (store, shutdown, path) = (store.clone(), shutdown.clone(), path.clone());
            std::thread::spawn(move || {
                watch_loop(&path, Duration::from_millis(10), &store, &shutdown, initial)
            })
        };

        // Garbage dropped on the path must not take the store down.
        // Replace via sibling + rename: truncating the live file in
        // place would invalidate the store's active mapping (SIGBUS on
        // the next probe) — exactly what the module docs forbid.
        let garbage = path.with_extension("garbage");
        std::fs::write(&garbage, b"not a snapshot at all").unwrap();
        std::fs::rename(&garbage, &path).unwrap();
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(store.epoch(), 1, "garbage must not swap");

        // A valid replacement snapshot is picked up.
        let b = snap_file("watch-b", &[square(-73.9, 40.7, 0.02)]);
        std::fs::rename(&b, &path).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while store.epoch() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(store.epoch(), 2, "watcher must pick up the new snapshot");

        shutdown.store(true, Ordering::Release);
        let swaps = handle.join().unwrap();
        assert_eq!(swaps, 1);
        std::fs::remove_file(&path).unwrap();
    }
}
