//! Splits one `ACTSNP01` snapshot into N per-shard snapshots for a
//! sharded worker fleet (see `act_core::shard` for the cut).
//!
//! ```text
//! act-shard <snapshot> <out-dir> <num-shards> [--split-level L]
//! ```
//!
//! Writes `shard-<k>-of-<n>.snap` under `<out-dir>` (atomic rename per
//! shard), each a full self-validating snapshot an `act-serve` worker
//! mmaps directly. The router must be started with the same split level
//! (default `act_core::DEFAULT_SPLIT_LEVEL`).

use act_core::{write_shard_files, ActIndex, DEFAULT_SPLIT_LEVEL};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: act-shard <snapshot> <out-dir> <num-shards> [--split-level L]";

fn main() -> ExitCode {
    let mut snapshot: Option<PathBuf> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut num_shards: Option<usize> = None;
    let mut split_level = DEFAULT_SPLIT_LEVEL;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--split-level" => match args.next().and_then(|v| v.parse::<u8>().ok()) {
                Some(l) if l <= 14 => split_level = l,
                _ => return usage("--split-level takes a level in 0..=14"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if snapshot.is_none() => snapshot = Some(PathBuf::from(a)),
            _ if out_dir.is_none() => out_dir = Some(PathBuf::from(a)),
            _ if num_shards.is_none() => match a.parse::<usize>() {
                Ok(n) if n > 0 => num_shards = Some(n),
                _ => return usage("num-shards must be a positive integer"),
            },
            _ => return usage("unexpected extra argument"),
        }
    }
    let (Some(snapshot), Some(out_dir), Some(num_shards)) = (snapshot, out_dir, num_shards) else {
        return usage("missing required arguments");
    };

    let mut f = match std::fs::File::open(&snapshot) {
        Ok(f) => f,
        Err(e) => return fail(&format!("open {}: {e}", snapshot.display())),
    };
    let index = match ActIndex::load_snapshot(&mut f) {
        Ok(i) => i,
        Err(e) => return fail(&format!("load {}: {e}", snapshot.display())),
    };
    match write_shard_files(&index, &out_dir, split_level, num_shards) {
        Ok(paths) => {
            for p in &paths {
                println!("{}", p.display());
            }
            eprintln!(
                "sharded {} into {num_shards} shards at split level {split_level} under {}",
                snapshot.display(),
                out_dir.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("shard: {e}")),
    }
}

fn usage(why: &str) -> ExitCode {
    eprintln!("act-shard: {why}\n{USAGE}");
    ExitCode::from(2)
}

fn fail(why: &str) -> ExitCode {
    eprintln!("act-shard: {why}");
    ExitCode::FAILURE
}
