//! One act-serve worker: serves a snapshot (one shard of a fleet, or a
//! whole index) over the frame protocol until killed.
//!
//! ```text
//! act-serve <snapshot> [--addr A] [--workers N] [--no-watch]
//!           [--metrics-addr A] [--trace-every N] [--trace-seed S]
//!           [--cache-capacity N] [--quota-lanes N]
//! ```
//!
//! Prints `listening on <addr>` once accepting (scripts scrape the
//! ephemeral port from it). The snapshot path is watched for hot-swap —
//! replace the file (or drop `.d<seq>` delta siblings beside it) and the
//! worker cuts over without dropping a request; `--no-watch` pins the
//! starting epoch.
//!
//! `--cache-capacity` turns on the hot-cell result cache (epoch-keyed;
//! see the serve crate's `cache` module) with that many entries;
//! `--quota-lanes` enforces the per-client fairness quota: one
//! connection may have at most N probe lanes admitted at a time, and
//! over-quota frames are answered `LOADSHED` with a retry hint.
//!
//! `--metrics-addr` turns on the observability pipeline (per-stage
//! latency histograms, sampled traces) and serves Prometheus text on
//! `GET /metrics` at that address (prints `metrics on <addr>`). On
//! SIGINT/SIGTERM the worker drains the sampled trace ring as JSON
//! lines to stdout before exiting — without `--metrics-addr` the
//! signal just exits cleanly.

use act_serve::{CacheConfig, ObsConfig, ServeConfig, Server};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: act-serve <snapshot> [--addr A] [--workers N] [--no-watch] \
[--metrics-addr A] [--trace-every N] [--trace-seed S] [--cache-capacity N] [--quota-lanes N]";

fn main() -> ExitCode {
    let mut snapshot: Option<String> = None;
    let mut config = ServeConfig::default();
    let mut metrics_addr: Option<String> = None;
    let mut obs = ObsConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => match args.next() {
                Some(addr) => config.addr = addr,
                None => return usage("--addr takes an address"),
            },
            "--workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.workers = n,
                _ => return usage("--workers takes a positive integer"),
            },
            "--no-watch" => config.watch = None,
            "--metrics-addr" => match args.next() {
                Some(addr) => metrics_addr = Some(addr),
                None => return usage("--metrics-addr takes an address"),
            },
            "--trace-every" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => obs.trace_sample_every = n,
                None => return usage("--trace-every takes an integer (0 disables sampling)"),
            },
            "--trace-seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(s) => obs.trace_seed = s,
                None => return usage("--trace-seed takes an integer"),
            },
            "--cache-capacity" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => {
                    config.cache = Some(CacheConfig {
                        capacity: n,
                        ..CacheConfig::default()
                    })
                }
                _ => return usage("--cache-capacity takes a positive entry count"),
            },
            "--quota-lanes" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.client_quota_lanes = Some(n),
                _ => return usage("--quota-lanes takes a positive lane count"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if snapshot.is_none() => snapshot = Some(a),
            _ => return usage("unexpected extra argument"),
        }
    }
    let Some(snapshot) = snapshot else {
        return usage("missing snapshot path");
    };
    if metrics_addr.is_some() {
        config.obs = Some(obs);
    }

    let server = match Server::spawn(&snapshot, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("act-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());

    let _metrics = match metrics_addr {
        Some(addr) => match act_obs::MetricsServer::spawn(&addr, server.metrics_fn()) {
            Ok(m) => {
                println!("metrics on {}", m.addr());
                Some(m)
            }
            Err(e) => {
                eprintln!("act-serve: metrics listener: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    // Serve until SIGINT/SIGTERM, then drain the trace ring (if any)
    // to stdout. The handles' Drop impls shut the listeners down.
    let sig = match install_signals() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("act-serve: signal handler: {e}");
            return ExitCode::FAILURE;
        }
    };
    while !sig.is_raised() {
        std::thread::sleep(Duration::from_millis(100));
    }
    if let Some(trace) = server.trace_json_lines() {
        print!("{trace}");
    }
    ExitCode::SUCCESS
}

fn install_signals() -> std::io::Result<sigflag::SigFlag> {
    sigflag::SigFlag::install(sigflag::SIGINT)?;
    sigflag::SigFlag::install(sigflag::SIGTERM)
}

fn usage(why: &str) -> ExitCode {
    eprintln!("act-serve: {why}\n{USAGE}");
    ExitCode::from(2)
}
