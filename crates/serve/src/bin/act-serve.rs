//! One act-serve worker: serves a snapshot (one shard of a fleet, or a
//! whole index) over the frame protocol until killed.
//!
//! ```text
//! act-serve <snapshot> [--addr A] [--workers N] [--no-watch]
//! ```
//!
//! Prints `listening on <addr>` once accepting (scripts scrape the
//! ephemeral port from it). The snapshot path is watched for hot-swap —
//! replace the file (or drop `.d<seq>` delta siblings beside it) and the
//! worker cuts over without dropping a request; `--no-watch` pins the
//! starting epoch.

use act_serve::{ServeConfig, Server};
use std::process::ExitCode;

const USAGE: &str = "usage: act-serve <snapshot> [--addr A] [--workers N] [--no-watch]";

fn main() -> ExitCode {
    let mut snapshot: Option<String> = None;
    let mut config = ServeConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => match args.next() {
                Some(addr) => config.addr = addr,
                None => return usage("--addr takes an address"),
            },
            "--workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.workers = n,
                _ => return usage("--workers takes a positive integer"),
            },
            "--no-watch" => config.watch = None,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if snapshot.is_none() => snapshot = Some(a),
            _ => return usage("unexpected extra argument"),
        }
    }
    let Some(snapshot) = snapshot else {
        return usage("missing snapshot path");
    };

    let server = match Server::spawn(&snapshot, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("act-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    // Serve until killed; the handle's Drop drains gracefully if the
    // process gets to unwind at all.
    loop {
        std::thread::park();
    }
}

fn usage(why: &str) -> ExitCode {
    eprintln!("act-serve: {why}\n{USAGE}");
    ExitCode::from(2)
}
