//! The scatter-gather router: one protocol endpoint in front of a
//! sharded `act-serve` fleet (see `act_serve::router`).
//!
//! ```text
//! act-route --shard <addr> [--shard <addr> ...] [--addr A] [--split-level L]
//!           [--metrics-addr A] [--trace-every N] [--trace-seed S]
//! ```
//!
//! Shard order must match the sharder's: the worker given as the k-th
//! `--shard` serves `shard-<k>-of-<n>.snap`. The split level must equal
//! the one the shards were written with (default
//! `act_core::DEFAULT_SPLIT_LEVEL`). Prints `listening on <addr>` once
//! accepting, then routes until killed.
//!
//! `--metrics-addr` turns on the router's trace ring and serves
//! Prometheus text on `GET /metrics` at that address: each scrape
//! fans a histogram-flagged STATS out to every shard and renders the
//! merged fleet view plus per-shard (`shard="k"`-labeled) breakdowns.
//! On SIGINT/SIGTERM the router drains its trace ring (breaker
//! open/close events) as JSON lines to stdout before exiting.

use act_serve::{ObsConfig, Router, RouterConfig};
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: act-route --shard <addr> [--shard <addr> ...] [--addr A] \
[--split-level L] [--metrics-addr A] [--trace-every N] [--trace-seed S]";

fn main() -> ExitCode {
    let mut shards: Vec<SocketAddr> = Vec::new();
    let mut config = RouterConfig::default();
    let mut metrics_addr: Option<String> = None;
    let mut obs = ObsConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--shard" => match args.next().map(|v| v.to_socket_addrs()) {
                Some(Ok(mut resolved)) => match resolved.next() {
                    Some(addr) => shards.push(addr),
                    None => return usage("--shard address resolved to nothing"),
                },
                _ => return usage("--shard takes a resolvable address"),
            },
            "--addr" => match args.next() {
                Some(addr) => config.addr = addr,
                None => return usage("--addr takes an address"),
            },
            "--split-level" => match args.next().and_then(|v| v.parse::<u8>().ok()) {
                Some(l) if l <= 14 => config.split_level = l,
                _ => return usage("--split-level takes a level in 0..=14"),
            },
            "--metrics-addr" => match args.next() {
                Some(addr) => metrics_addr = Some(addr),
                None => return usage("--metrics-addr takes an address"),
            },
            "--trace-every" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => obs.trace_sample_every = n,
                None => return usage("--trace-every takes an integer (0 disables sampling)"),
            },
            "--trace-seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(s) => obs.trace_seed = s,
                None => return usage("--trace-seed takes an integer"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => return usage("unexpected argument"),
        }
    }
    if shards.is_empty() {
        return usage("at least one --shard is required");
    }
    if metrics_addr.is_some() {
        config.obs = Some(obs);
    }

    let router = match Router::spawn(shards, config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("act-route: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", router.addr());

    let _metrics = match metrics_addr {
        Some(addr) => match act_obs::MetricsServer::spawn(&addr, router.metrics_fn()) {
            Ok(m) => {
                println!("metrics on {}", m.addr());
                Some(m)
            }
            Err(e) => {
                eprintln!("act-route: metrics listener: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let sig = match install_signals() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("act-route: signal handler: {e}");
            return ExitCode::FAILURE;
        }
    };
    while !sig.is_raised() {
        std::thread::sleep(Duration::from_millis(100));
    }
    if let Some(trace) = router.trace_json_lines() {
        print!("{trace}");
    }
    ExitCode::SUCCESS
}

fn install_signals() -> std::io::Result<sigflag::SigFlag> {
    sigflag::SigFlag::install(sigflag::SIGINT)?;
    sigflag::SigFlag::install(sigflag::SIGTERM)
}

fn usage(why: &str) -> ExitCode {
    eprintln!("act-route: {why}\n{USAGE}");
    ExitCode::from(2)
}
