//! The scatter-gather router: one protocol endpoint in front of a
//! sharded `act-serve` fleet (see `act_serve::router`).
//!
//! ```text
//! act-route --shard <addr> [--shard <addr> ...] [--addr A] [--split-level L]
//! ```
//!
//! Shard order must match the sharder's: the worker given as the k-th
//! `--shard` serves `shard-<k>-of-<n>.snap`. The split level must equal
//! the one the shards were written with (default
//! `act_core::DEFAULT_SPLIT_LEVEL`). Prints `listening on <addr>` once
//! accepting, then routes until killed.

use act_serve::{Router, RouterConfig};
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;

const USAGE: &str =
    "usage: act-route --shard <addr> [--shard <addr> ...] [--addr A] [--split-level L]";

fn main() -> ExitCode {
    let mut shards: Vec<SocketAddr> = Vec::new();
    let mut config = RouterConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--shard" => match args.next().map(|v| v.to_socket_addrs()) {
                Some(Ok(mut resolved)) => match resolved.next() {
                    Some(addr) => shards.push(addr),
                    None => return usage("--shard address resolved to nothing"),
                },
                _ => return usage("--shard takes a resolvable address"),
            },
            "--addr" => match args.next() {
                Some(addr) => config.addr = addr,
                None => return usage("--addr takes an address"),
            },
            "--split-level" => match args.next().and_then(|v| v.parse::<u8>().ok()) {
                Some(l) if l <= 14 => config.split_level = l,
                _ => return usage("--split-level takes a level in 0..=14"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => return usage("unexpected argument"),
        }
    }
    if shards.is_empty() {
        return usage("at least one --shard is required");
    }

    let router = match Router::spawn(shards, config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("act-route: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", router.addr());
    loop {
        std::thread::park();
    }
}

fn usage(why: &str) -> ExitCode {
    eprintln!("act-route: {why}\n{USAGE}");
    ExitCode::from(2)
}
