//! A small blocking client for the act-serve protocol. One TCP
//! connection, one in-flight request at a time (the server answers a
//! connection's frames in order). Spin up several clients on separate
//! connections for parallel load — that is also what lets the server
//! form cross-connection micro-batches.

use crate::protocol as proto;
use geom::Coord;
use std::fmt;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Largest response body the client will accept (a full probe frame's
/// worth of densely referenced points stays far below this).
const MAX_RESP_BODY: usize = 1 << 26;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(io::Error),
    /// The peer violated the protocol (the string names how).
    Protocol(&'static str),
    /// The server answered with a non-OK status code.
    Server(u8),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClientError::Server(s) => write!(f, "server status {s} ({})", proto::status_name(*s)),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A blocking act-serve connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects and disables Nagle (frames are latency-sensitive).
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Bounds every response read: a wedged or drained-away server
    /// surfaces as [`ClientError::Io`] (`WouldBlock`/`TimedOut`) instead
    /// of hanging the caller forever. `None` restores blocking reads.
    ///
    /// After a timeout fires mid-frame the stream may hold a partial
    /// response, so treat the connection as dead and reconnect.
    ///
    /// # Errors
    /// Propagates `setsockopt` failures.
    pub fn set_read_timeout(&mut self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Probes a batch of points (at most [`proto::MAX_POINTS`]).
    /// `exact = false` returns the paper's approximate answer — true
    /// hits flagged, ε-bounded candidates riding along; `exact = true`
    /// asks the server to refine candidates to actual membership
    /// (requires a server-side refiner).
    ///
    /// # Errors
    /// I/O failures, protocol violations, or a non-OK server status
    /// ([`ClientError::Server`]).
    ///
    /// # Panics
    /// Panics if `coords` exceeds [`proto::MAX_POINTS`].
    pub fn probe(
        &mut self,
        coords: &[Coord],
        exact: bool,
    ) -> Result<proto::ProbeReply, ClientError> {
        self.stream
            .write_all(&proto::encode_probe_request(coords, exact))?;
        let (h, payload) = self.read_response()?;
        // Status before the op echo: a BUSY reject arrives with op 0 (it
        // answers the connection, not any frame) and must surface as the
        // typed server status, not as a protocol violation.
        if h.status != proto::STATUS_OK {
            return Err(ClientError::Server(h.status));
        }
        if h.op != proto::OP_PROBE {
            return Err(ClientError::Protocol("response op does not echo PROBE"));
        }
        if h.n as usize != coords.len() {
            return Err(ClientError::Protocol("response point count mismatch"));
        }
        let refs = proto::decode_probe_payload(h.n, &payload).map_err(ClientError::Protocol)?;
        Ok(proto::ProbeReply {
            epoch: h.epoch,
            refs,
        })
    }

    /// Liveness check: returns the serving epoch and the counter block
    /// (total probes served, shed/bad-frame tallies, queue high-water).
    ///
    /// # Errors
    /// As [`Client::probe`].
    pub fn ping(&mut self) -> Result<proto::PingReply, ClientError> {
        let counters = self.counters_request(proto::OP_PING, &proto::encode_ping_request())?;
        Ok(proto::PingReply {
            epoch: counters.0,
            probes_served: counters.1.probes,
            counters: counters.1,
        })
    }

    /// Counter/metrics snapshot (the monitoring twin of [`Client::ping`]).
    ///
    /// # Errors
    /// As [`Client::probe`].
    pub fn stats(&mut self) -> Result<proto::StatsReply, ClientError> {
        let (epoch, counters) =
            self.counters_request(proto::OP_STATS, &proto::encode_stats_request())?;
        Ok(proto::StatsReply { epoch, counters })
    }

    fn counters_request(
        &mut self,
        op: u8,
        frame: &[u8],
    ) -> Result<(u32, proto::CounterBlock), ClientError> {
        self.stream.write_all(frame)?;
        let (h, payload) = self.read_response()?;
        // Status first: BUSY carries op 0 (see Client::probe).
        if h.status != proto::STATUS_OK {
            return Err(ClientError::Server(h.status));
        }
        if h.op != op {
            return Err(ClientError::Protocol(
                "response op does not echo the request",
            ));
        }
        let counters = proto::decode_counters(&payload).map_err(ClientError::Protocol)?;
        Ok((h.epoch, counters))
    }

    fn read_response(&mut self) -> Result<(proto::RespHeader, Vec<u8>), ClientError> {
        let body = proto::read_frame(&mut self.stream, MAX_RESP_BODY)?
            .ok_or(ClientError::Protocol("connection closed mid-conversation"))?;
        let (h, payload) = proto::decode_response(&body).map_err(ClientError::Protocol)?;
        Ok((h, payload.to_vec()))
    }
}
