//! A small blocking client for the act-serve protocol. One TCP
//! connection, one in-flight request at a time (the server answers a
//! connection's frames in order). Spin up several clients on separate
//! connections for parallel load — that is also what lets the server
//! form cross-connection micro-batches.
//!
//! [`Client`] is the bare connection: one attempt, every failure
//! surfaced. [`ResilientClient`] wraps it with a [`RetryPolicy`]: a
//! per-attempt read timeout, reconnection after IO or framing failures,
//! and seeded-jitter exponential backoff on retryable server statuses —
//! honoring the server's `retry_after_ms` hint when a reject carries one
//! — all bounded by a total-attempt cap and an optional per-request
//! deadline.

use crate::protocol as proto;
use geom::Coord;
use s2cell::CellId;
use std::fmt;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Largest response body the client will accept (a full probe frame's
/// worth of densely referenced points stays far below this).
const MAX_RESP_BODY: usize = 1 << 26;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(io::Error),
    /// The peer violated the protocol (the string names how).
    Protocol(&'static str),
    /// The server answered with a non-OK status code. `retry_after_ms`
    /// is the server's backoff hint when the reject carried one
    /// (LOADSHED/BUSY under protocol v2).
    Server {
        /// The typed status byte (`STATUS_*`).
        status: u8,
        /// Server-suggested earliest retry, when provided.
        retry_after_ms: Option<u32>,
    },
    /// A [`ResilientClient`] ran out of attempts or deadline; the last
    /// underlying failure is boxed inside.
    Exhausted {
        /// Attempts actually made before giving up.
        attempts: u32,
        /// The failure that ended the last attempt.
        last: Box<ClientError>,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClientError::Server {
                status,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "server status {status} ({})",
                    proto::status_name(*status)
                )?;
                if let Some(ms) = retry_after_ms {
                    write!(f, ", retry after {ms} ms")?;
                }
                Ok(())
            }
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Exhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A blocking act-serve connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects and disables Nagle (frames are latency-sensitive).
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Bounds every response read: a wedged or drained-away server
    /// surfaces as [`ClientError::Io`] (`WouldBlock`/`TimedOut`) instead
    /// of hanging the caller forever. `None` restores blocking reads.
    ///
    /// After a timeout fires mid-frame the stream may hold a partial
    /// response, so treat the connection as dead and reconnect.
    ///
    /// # Errors
    /// Propagates `setsockopt` failures.
    pub fn set_read_timeout(&mut self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Probes a batch of points (at most [`proto::MAX_POINTS`]).
    /// `exact = false` returns the paper's approximate answer — true
    /// hits flagged, ε-bounded candidates riding along; `exact = true`
    /// asks the server to refine candidates to actual membership
    /// (requires a server-side refiner).
    ///
    /// # Errors
    /// I/O failures, protocol violations, or a non-OK server status
    /// ([`ClientError::Server`]).
    ///
    /// # Panics
    /// Panics if `coords` exceeds [`proto::MAX_POINTS`].
    pub fn probe(
        &mut self,
        coords: &[Coord],
        exact: bool,
    ) -> Result<proto::ProbeReply, ClientError> {
        self.stream
            .write_all(&proto::encode_probe_request(coords, exact))?;
        let (h, payload) = self.read_response()?;
        // Status before the op echo: a BUSY reject arrives with op 0 (it
        // answers the connection, not any frame) and must surface as the
        // typed server status, not as a protocol violation.
        if h.status != proto::STATUS_OK {
            return Err(server_error(h.status, &payload));
        }
        if h.op != proto::OP_PROBE {
            return Err(ClientError::Protocol("response op does not echo PROBE"));
        }
        if h.n as usize != coords.len() {
            return Err(ClientError::Protocol("response point count mismatch"));
        }
        let refs = proto::decode_probe_payload(h.n, &payload).map_err(ClientError::Protocol)?;
        Ok(proto::ProbeReply {
            epoch: h.epoch,
            refs,
        })
    }

    /// Probes a batch of pre-computed S2 leaf cells ([`proto::FLAG_CELLS`],
    /// protocol v4): half the payload bytes of the coordinate form, and
    /// the server skips the coordinate→cell conversion. Approximate mode
    /// only — refinement needs coordinates. v1–v3 servers reject the
    /// flag with BAD_REQUEST, surfaced as [`ClientError::Server`].
    ///
    /// # Errors
    /// As [`Client::probe`].
    ///
    /// # Panics
    /// Panics if `cells` exceeds [`proto::MAX_POINTS`].
    pub fn probe_cells(&mut self, cells: &[CellId]) -> Result<proto::ProbeReply, ClientError> {
        self.stream
            .write_all(&proto::encode_probe_cells_request(cells))?;
        let (h, payload) = self.read_response()?;
        if h.status != proto::STATUS_OK {
            return Err(server_error(h.status, &payload));
        }
        if h.op != proto::OP_PROBE {
            return Err(ClientError::Protocol("response op does not echo PROBE"));
        }
        if h.n as usize != cells.len() {
            return Err(ClientError::Protocol("response point count mismatch"));
        }
        let refs = proto::decode_probe_payload(h.n, &payload).map_err(ClientError::Protocol)?;
        Ok(proto::ProbeReply {
            epoch: h.epoch,
            refs,
        })
    }

    /// Liveness check: returns the serving epoch and the counter block
    /// (total probes served, shed/bad-frame tallies, queue high-water).
    ///
    /// # Errors
    /// As [`Client::probe`].
    pub fn ping(&mut self) -> Result<proto::PingReply, ClientError> {
        let counters = self.counters_request(proto::OP_PING, &proto::encode_ping_request())?;
        Ok(proto::PingReply {
            epoch: counters.0,
            probes_served: counters.1.probes,
            counters: counters.1,
        })
    }

    /// Counter/metrics snapshot (the monitoring twin of [`Client::ping`]).
    ///
    /// # Errors
    /// As [`Client::probe`].
    pub fn stats(&mut self) -> Result<proto::StatsReply, ClientError> {
        let (epoch, counters) =
            self.counters_request(proto::OP_STATS, &proto::encode_stats_request())?;
        Ok(proto::StatsReply { epoch, counters })
    }

    /// The **flagged** (protocol v3) stats read: the extended counter
    /// block — including the windowed queue high-water mark, which this
    /// read consumes — plus every stage histogram the server keeps
    /// (empty section when observability is off). v1/v2 servers answer
    /// the flag with BAD_REQUEST, surfaced as [`ClientError::Server`].
    ///
    /// # Errors
    /// As [`Client::probe`].
    pub fn stats_ex(&mut self) -> Result<proto::StatsExReply, ClientError> {
        self.stream.write_all(&proto::encode_stats_ex_request())?;
        let (h, payload) = self.read_response()?;
        if h.status != proto::STATUS_OK {
            return Err(server_error(h.status, &payload));
        }
        if h.op != proto::OP_STATS {
            return Err(ClientError::Protocol(
                "response op does not echo the request",
            ));
        }
        let (counters, histograms) =
            proto::decode_stats_ex_payload(&payload).map_err(ClientError::Protocol)?;
        Ok(proto::StatsExReply {
            epoch: h.epoch,
            counters,
            histograms,
        })
    }

    /// Dumps the server's sampled trace ring as JSON lines (oldest event
    /// first; non-destructive). A server running without observability
    /// answers UNSUPPORTED, surfaced as [`ClientError::Server`].
    ///
    /// # Errors
    /// As [`Client::probe`].
    pub fn dump(&mut self) -> Result<String, ClientError> {
        self.stream.write_all(&proto::encode_dump_request())?;
        let (h, payload) = self.read_response()?;
        if h.status != proto::STATUS_OK {
            return Err(server_error(h.status, &payload));
        }
        if h.op != proto::OP_DUMP {
            return Err(ClientError::Protocol(
                "response op does not echo the request",
            ));
        }
        String::from_utf8(payload).map_err(|_| ClientError::Protocol("trace dump is not UTF-8"))
    }

    fn counters_request(
        &mut self,
        op: u8,
        frame: &[u8],
    ) -> Result<(u32, proto::CounterBlock), ClientError> {
        self.stream.write_all(frame)?;
        let (h, payload) = self.read_response()?;
        // Status first: BUSY carries op 0 (see Client::probe).
        if h.status != proto::STATUS_OK {
            return Err(server_error(h.status, &payload));
        }
        if h.op != op {
            return Err(ClientError::Protocol(
                "response op does not echo the request",
            ));
        }
        let counters = proto::decode_counters(&payload).map_err(ClientError::Protocol)?;
        Ok((h.epoch, counters))
    }

    fn read_response(&mut self) -> Result<(proto::RespHeader, Vec<u8>), ClientError> {
        let body = proto::read_frame(&mut self.stream, MAX_RESP_BODY)?
            .ok_or(ClientError::Protocol("connection closed mid-conversation"))?;
        let (h, payload) = proto::decode_response(&body).map_err(ClientError::Protocol)?;
        Ok((h, payload.to_vec()))
    }
}

/// The typed error for a non-OK response, decoding the optional
/// `retry_after_ms` hint that LOADSHED/BUSY rejects may carry (v1
/// servers send none — `decode_retry_after` accepts an empty payload).
fn server_error(status: u8, payload: &[u8]) -> ClientError {
    match status {
        proto::STATUS_LOADSHED | proto::STATUS_BUSY => match proto::decode_retry_after(payload) {
            Ok(hint) => ClientError::Server {
                status,
                retry_after_ms: hint,
            },
            Err(what) => ClientError::Protocol(what),
        },
        _ => ClientError::Server {
            status,
            retry_after_ms: None,
        },
    }
}

/// How a [`ResilientClient`] retries. The defaults suit an interactive
/// caller: a handful of attempts, millisecond-scale backoff that doubles
/// per retry, a read timeout that turns a wedged server into a
/// reconnect, and a per-request deadline that bounds the whole dance.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included). At least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry when the server sent no hint;
    /// doubles per consecutive retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
    /// Per-attempt socket read timeout (a response slower than this
    /// poisons the connection: partial frames may be in flight, so the
    /// client reconnects before retrying).
    pub read_timeout: Duration,
    /// Overall wall-clock budget for one request across every attempt
    /// and backoff sleep; `None` means attempts alone bound the work.
    pub deadline: Option<Duration>,
    /// Seed for the deterministic ±25% backoff jitter (spreads herds of
    /// shed clients without nondeterminism in tests).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            read_timeout: Duration::from_secs(2),
            deadline: Some(Duration::from_secs(10)),
            jitter_seed: 0x5EED,
        }
    }
}

/// A [`Client`] that survives a hostile network: it reconnects after IO
/// and framing failures, retries retryable server statuses (LOADSHED,
/// BUSY, INTERNAL) under jittered exponential backoff — sleeping the
/// server's `retry_after_ms` hint instead when the reject carried one —
/// and gives up with [`ClientError::Exhausted`] once the policy's
/// attempt cap or deadline is spent. Non-retryable statuses (BAD_FRAME,
/// UNSUPPORTED) surface immediately: resending a malformed or
/// unsupported request can only fail the same way.
#[derive(Debug)]
pub struct ResilientClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    conn: Option<Client>,
    connects: u64,
    retries: u64,
    backoff_slept: Duration,
}

impl ResilientClient {
    /// Resolves `addr` once and readies the client. No connection is
    /// opened yet — the first request dials (and re-dials on failure).
    ///
    /// # Errors
    /// Address resolution failures.
    pub fn new(addr: impl ToSocketAddrs, policy: RetryPolicy) -> io::Result<ResilientClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other("address resolved to nothing"))?;
        Ok(ResilientClient {
            addr,
            policy,
            conn: None,
            connects: 0,
            retries: 0,
            backoff_slept: Duration::ZERO,
        })
    }

    /// Readies a client over an **already-resolved** address —
    /// infallible, since there is no name resolution left to fail. The
    /// router's per-connection client pools use this: shard addresses
    /// are resolved once at router spawn, so building a pool later must
    /// never be able to panic a connection thread.
    pub fn from_resolved(addr: SocketAddr, policy: RetryPolicy) -> ResilientClient {
        ResilientClient {
            addr,
            policy,
            conn: None,
            connects: 0,
            retries: 0,
            backoff_slept: Duration::ZERO,
        }
    }

    /// Connections dialed so far (1 in the happy path; each reconnect
    /// after an IO/framing failure adds one).
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// Attempts beyond the first, across every request so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Total time spent asleep in backoff (chaos tests assert hints are
    /// honored; load generators subtract it from offered-load math).
    pub fn backoff_slept(&self) -> Duration {
        self.backoff_slept
    }

    /// [`Client::probe`] with retries per the policy.
    ///
    /// # Errors
    /// The first non-retryable failure, or [`ClientError::Exhausted`].
    ///
    /// # Panics
    /// Panics if `coords` exceeds [`proto::MAX_POINTS`].
    pub fn probe(
        &mut self,
        coords: &[Coord],
        exact: bool,
    ) -> Result<proto::ProbeReply, ClientError> {
        self.with_retries(|c| c.probe(coords, exact))
    }

    /// [`Client::probe_cells`] with retries per the policy.
    ///
    /// # Errors
    /// As [`ResilientClient::probe`].
    ///
    /// # Panics
    /// Panics if `cells` exceeds [`proto::MAX_POINTS`].
    pub fn probe_cells(&mut self, cells: &[CellId]) -> Result<proto::ProbeReply, ClientError> {
        self.with_retries(|c| c.probe_cells(cells))
    }

    /// [`Client::ping`] with retries per the policy.
    ///
    /// # Errors
    /// As [`ResilientClient::probe`].
    pub fn ping(&mut self) -> Result<proto::PingReply, ClientError> {
        self.with_retries(Client::ping)
    }

    /// [`Client::stats`] with retries per the policy.
    ///
    /// # Errors
    /// As [`ResilientClient::probe`].
    pub fn stats(&mut self) -> Result<proto::StatsReply, ClientError> {
        self.with_retries(Client::stats)
    }

    /// [`Client::stats_ex`] with retries per the policy.
    ///
    /// # Errors
    /// As [`ResilientClient::probe`].
    pub fn stats_ex(&mut self) -> Result<proto::StatsExReply, ClientError> {
        self.with_retries(Client::stats_ex)
    }

    /// [`Client::dump`] with retries per the policy.
    ///
    /// # Errors
    /// As [`ResilientClient::probe`].
    pub fn dump(&mut self) -> Result<String, ClientError> {
        self.with_retries(Client::dump)
    }

    fn with_retries<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let start = Instant::now();
        let deadline = self.policy.deadline.map(|d| start + d);
        let attempts_cap = self.policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let result = match self.ensure_conn() {
                Ok(conn) => op(conn),
                Err(e) => Err(e),
            };
            let err = match result {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            let (retryable, hint_ms) = match &err {
                // The stream may hold a partial frame (timeout mid-read)
                // or be gone entirely: poison the connection either way.
                ClientError::Io(_) | ClientError::Protocol(_) => {
                    self.conn = None;
                    (true, None)
                }
                ClientError::Server {
                    status,
                    retry_after_ms,
                } => (
                    matches!(
                        *status,
                        proto::STATUS_LOADSHED | proto::STATUS_BUSY | proto::STATUS_INTERNAL
                    ),
                    *retry_after_ms,
                ),
                ClientError::Exhausted { .. } => (false, None),
            };
            if !retryable {
                return Err(err);
            }
            if attempt >= attempts_cap {
                return Err(ClientError::Exhausted {
                    attempts: attempt,
                    last: Box::new(err),
                });
            }
            // The server's hint wins over the local schedule; both get
            // the same deterministic ±25% jitter.
            let base = match hint_ms {
                Some(ms) => Duration::from_millis(u64::from(ms)),
                None => {
                    let shift = (attempt - 1).min(16);
                    self.policy
                        .base_backoff
                        .saturating_mul(1u32 << shift)
                        .min(self.policy.max_backoff)
                }
            };
            let mut sleep = jitter(base, self.policy.jitter_seed, u64::from(attempt));
            if let Some(dl) = deadline {
                let left = dl.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(ClientError::Exhausted {
                        attempts: attempt,
                        last: Box::new(err),
                    });
                }
                sleep = sleep.min(left);
            }
            if !sleep.is_zero() {
                std::thread::sleep(sleep);
                self.backoff_slept += sleep;
            }
            self.retries += 1;
        }
    }

    fn ensure_conn(&mut self) -> Result<&mut Client, ClientError> {
        if self.conn.is_none() {
            let mut c = Client::connect(self.addr)?;
            c.set_read_timeout(Some(self.policy.read_timeout))?;
            self.conn = Some(c);
            self.connects += 1;
        }
        Ok(self.conn.as_mut().expect("connection established above"))
    }
}

/// Deterministic ±25% jitter around `base`, keyed by seed and attempt.
fn jitter(base: Duration, seed: u64, attempt: u64) -> Duration {
    let micros = base.as_micros() as u64;
    let quarter = micros / 4;
    if quarter == 0 {
        return base;
    }
    let mut x = seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    Duration::from_micros(micros - quarter + x % (2 * quarter + 1))
}
