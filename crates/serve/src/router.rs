//! Scatter-gather routing over a sharded worker fleet.
//!
//! [`Router`] binds a TCP endpoint that speaks the exact same frame
//! protocol as a single worker ([`crate::protocol`]), so every existing
//! client — `Client`, `ResilientClient`, the load generator — points at
//! a router without changing a byte. Behind it sit N `act-serve`
//! workers, each mmapping one shard snapshot produced by
//! [`act_core::write_shard_files`] along the [`act_core::shard_of_cell`]
//! cut.
//!
//! ## One probe frame, end to end
//!
//! 1. **Partition**: each point's leaf cell names its owning shard via
//!    `shard_of_cell` — the single routing authority the sharder also
//!    used, so the owning shard holds every indexed cell whose territory
//!    covers the point (coarse cells were replicated at split time).
//! 2. **Scatter**: the per-shard sub-batches go out concurrently over
//!    this connection's pooled [`ResilientClient`]s (one per shard,
//!    retries/backoff/reconnect per the policy).
//! 3. **Gather**: sub-replies are stitched back in request order; each
//!    point's refs pass through [`crate::protocol::dedup_refs`] so
//!    replicated coarse cells can never double-report a polygon.
//!
//! ## Failure semantics
//!
//! Worker failures degrade along the protocol's own vocabulary, worst
//! status wins: `UNSUPPORTED` forwards as-is (the capability is missing
//! fleet-wide), any unexpected failure (connect refused after retries, a
//! protocol violation, `BAD_REQUEST`) answers `INTERNAL`, and a shard
//! mid-drain or overloaded (`BUSY`/`LOADSHED` surviving the client's own
//! retries) answers `LOADSHED` carrying the **largest** `retry_after_ms`
//! hint any shard suggested. A shard that failed enters a short cooldown
//! during which probes needing it shed immediately instead of burning
//! the retry budget again — that is what makes a rolling per-shard
//! restart cheap: the fleet keeps answering, only points owned by the
//! restarting shard shed, and the first successful contact clears the
//! cooldown. PING/STATS fan out to every shard, bypass the cooldown
//! (monitoring wants ground truth and doubles as recovery detection),
//! and merge counter blocks via [`CounterBlock::merge`] with the fleet
//! epoch reported as the **minimum** shard epoch (the conservative
//! answer to "has everyone swapped yet?").

use crate::client::{ClientError, ResilientClient, RetryPolicy};
use crate::obs::{render_counters, render_histograms, render_trace_meta, ObsConfig};
use crate::protocol::{self as proto, CounterBlock};
use act_core::{coord_to_cell, shard_of_cell, DEFAULT_SPLIT_LEVEL};
use act_obs::{PromText, TraceRing};
use geom::Coord;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a [`Router`] listens, routes, and treats failing shards.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Split level of the shard cut. **Must equal the level the shards
    /// were written with** — it is the routing authority.
    pub split_level: u8,
    /// Retry policy for every per-shard client connection.
    pub policy: RetryPolicy,
    /// Inbound connection cap; excess connections are answered with one
    /// `BUSY` frame and closed, exactly like a worker's accept gate.
    pub max_connections: usize,
    /// How long a shard that just failed is considered down. Probes
    /// needing it during the window shed immediately with the remaining
    /// cooldown as the retry hint, instead of re-burning the client's
    /// whole retry budget per request.
    pub cooldown: Duration,
    /// Router-side observability: a trace ring recording sampled frame
    /// admissions (with their shard fan-out width) and per-shard breaker
    /// open/close transitions (the router keeps no latency histograms of
    /// its own — stage timings live in the workers and are gathered
    /// through flagged STATS). `None` records nothing.
    pub obs: Option<ObsConfig>,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            split_level: DEFAULT_SPLIT_LEVEL,
            policy: RetryPolicy::default(),
            max_connections: 256,
            cooldown: Duration::from_millis(250),
            obs: None,
        }
    }
}

/// Per-shard circuit state, shared by every connection handler.
#[derive(Debug, Default)]
struct ShardHealth {
    /// While set and in the future, the shard is cooling down.
    down_until: Option<Instant>,
}

struct RouterState {
    split_level: u8,
    shard_addrs: Vec<SocketAddr>,
    policy: RetryPolicy,
    cooldown: Duration,
    health: Vec<Mutex<ShardHealth>>,
    draining: AtomicBool,
    conns_live: AtomicUsize,
    /// Sampled-admission + breaker-transition trace ring; `None`
    /// records nothing.
    trace: Option<Arc<TraceRing>>,
}

impl RouterState {
    fn num_shards(&self) -> usize {
        self.shard_addrs.len()
    }

    fn health(&self, shard: usize) -> std::sync::MutexGuard<'_, ShardHealth> {
        // A panic while holding this trivial lock leaves a plain Option
        // behind — recover rather than cascade (see `IndexStore`).
        self.health[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Remaining cooldown of a down shard, as a retry hint in ms.
    fn down_hint(&self, shard: usize) -> Option<u32> {
        let mut h = self.health(shard);
        match h.down_until {
            Some(t) => {
                let left = t.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    h.down_until = None;
                    None
                } else {
                    Some(
                        (left.as_millis() as u64).clamp(1, u64::from(proto::RETRY_AFTER_MAX_MS))
                            as u32,
                    )
                }
            }
            None => None,
        }
    }

    fn mark_down(&self, shard: usize) {
        let was_open = {
            let mut h = self.health(shard);
            let was = h.down_until.is_some_and(|t| t > Instant::now());
            h.down_until = Some(Instant::now() + self.cooldown);
            was
        };
        // Trace the *transition*, not every failure while already open.
        if !was_open {
            if let Some(t) = &self.trace {
                t.always(
                    "breaker_open",
                    &[
                        ("shard", shard as u64),
                        ("cooldown_ms", self.cooldown.as_millis() as u64),
                    ],
                );
            }
        }
    }

    fn mark_up(&self, shard: usize) {
        let was_down = self.health(shard).down_until.take().is_some();
        if was_down {
            if let Some(t) = &self.trace {
                t.always("breaker_close", &[("shard", shard as u64)]);
            }
        }
    }

    /// True when the shard's breaker is currently open (cooling down).
    fn is_down(&self, shard: usize) -> bool {
        self.health(shard)
            .down_until
            .is_some_and(|t| t > Instant::now())
    }
}

/// One shard's contribution to a scattered request.
enum Outcome<T> {
    Ok(T),
    /// The shard is shedding/draining/down; carries a retry hint (ms).
    Shed(u32),
    /// The shard lacks a capability (exact mode without a refiner).
    Unsupported,
    /// The shard failed in a way retries could not mend.
    Internal,
}

/// Folds a per-shard client failure into the routed vocabulary and
/// updates the shard's circuit state.
fn classify(state: &RouterState, shard: usize, err: &ClientError) -> Outcome<proto::ProbeReply> {
    // Exhausted wraps the failure that ended the last attempt; the
    // routed meaning is that of the inner error.
    let last = match err {
        ClientError::Exhausted { last, .. } => last.as_ref(),
        other => other,
    };
    match last {
        ClientError::Server {
            status,
            retry_after_ms,
        } if *status == proto::STATUS_LOADSHED || *status == proto::STATUS_BUSY => {
            state.mark_down(shard);
            Outcome::Shed(retry_after_ms.unwrap_or(proto::RETRY_AFTER_DEFAULT_MS))
        }
        ClientError::Server { status, .. } if *status == proto::STATUS_UNSUPPORTED => {
            // Not a health event: the worker is alive and answering.
            Outcome::Unsupported
        }
        _ => {
            state.mark_down(shard);
            Outcome::Internal
        }
    }
}

/// Spawns scatter-gather routers over a shard fleet.
pub struct Router;

impl Router {
    /// Binds `config.addr` and starts routing over `shard_addrs` (shard
    /// `k`'s worker at index `k` — the order must match the sharder's).
    ///
    /// # Errors
    /// Bind failures, or an empty shard list.
    pub fn spawn(shard_addrs: Vec<SocketAddr>, config: RouterConfig) -> io::Result<RouterHandle> {
        if shard_addrs.is_empty() {
            return Err(io::Error::other("a router needs at least one shard"));
        }
        let listener = TcpListener::bind(config.addr.as_str())?;
        let addr = listener.local_addr()?;
        let health = shard_addrs
            .iter()
            .map(|_| Mutex::new(ShardHealth::default()))
            .collect();
        let state = Arc::new(RouterState {
            split_level: config.split_level,
            shard_addrs,
            policy: config.policy,
            cooldown: config.cooldown,
            health,
            draining: AtomicBool::new(false),
            conns_live: AtomicUsize::new(0),
            trace: config.obs.as_ref().map(|c| {
                Arc::new(TraceRing::new(
                    c.trace_capacity,
                    c.trace_sample_every,
                    c.trace_seed,
                ))
            }),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let (st, cn) = (Arc::clone(&state), Arc::clone(&conns));
            let max_connections = config.max_connections;
            std::thread::Builder::new()
                .name("act-route-accept".to_string())
                .spawn(move || accept_loop(listener, st, cn, max_connections))
                .expect("spawn router accept loop")
        };
        Ok(RouterHandle {
            addr,
            state,
            conns,
            accept: Some(accept),
        })
    }
}

/// A running router. Dropping it (or calling [`RouterHandle::shutdown`])
/// stops accepting, lets in-flight requests finish, and joins every
/// thread.
pub struct RouterHandle {
    addr: SocketAddr,
    state: Arc<RouterState>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    accept: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound address (resolve the ephemeral port here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's own trace — sampled admissions and breaker
    /// transitions — as JSON lines (`None` when router observability is
    /// off). Non-destructive; `act-route` prints this on SIGINT.
    pub fn trace_json_lines(&self) -> Option<String> {
        self.state.trace.as_ref().map(|t| t.dump_json_lines())
    }

    /// A `/metrics` renderer for [`act_obs::MetricsServer`]. Each scrape
    /// performs one flagged-STATS fan-out to the fleet and renders the
    /// **merged** counter/histogram families (no `shard` label, min
    /// epoch) followed by a per-shard breakdown (`shard="k"` labels),
    /// plus an `act_shard_down` breaker gauge per shard. A shard that
    /// cannot be reached during the scrape simply contributes nothing —
    /// the merged families cover whoever answered.
    pub fn metrics_fn(&self) -> Arc<dyn Fn() -> String + Send + Sync> {
        let state = Arc::clone(&self.state);
        Arc::new(move || {
            let mut page = PromText::new();
            let mut merged = CounterBlock::default();
            let mut merged_hists: Vec<proto::StageHistogram> = Vec::new();
            let mut epoch = u32::MAX;
            let mut shards = Vec::new();
            for (k, addr) in state.shard_addrs.iter().enumerate() {
                let reply = ResilientClient::new(*addr, state.policy)
                    .ok()
                    .and_then(|mut c| c.stats_ex().ok());
                if let Some(r) = &reply {
                    epoch = epoch.min(r.epoch);
                    merged.merge(&r.counters);
                    proto::merge_stage_histograms(&mut merged_hists, &r.histograms);
                }
                shards.push((k.to_string(), reply));
            }
            if epoch == u32::MAX {
                epoch = 0; // nobody answered; the gauges below still render
            }
            render_counters(&mut page, &[], epoch, &merged);
            render_histograms(&mut page, &[], &merged_hists);
            for (label, reply) in &shards {
                let labels: [(&str, &str); 1] = [("shard", label.as_str())];
                if let Some(r) = reply {
                    render_counters(&mut page, &labels, r.epoch, &r.counters);
                    render_histograms(&mut page, &labels, &r.histograms);
                }
            }
            for (k, (label, _)) in shards.iter().enumerate() {
                page.gauge(
                    "act_shard_down",
                    "1 while the shard's circuit breaker is open.",
                    &[("shard", label.as_str())],
                    if state.is_down(k) { 1.0 } else { 0.0 },
                );
            }
            if let Some(t) = &state.trace {
                render_trace_meta(&mut page, &[], t);
            }
            page.finish()
        })
    }

    /// Stops the router: no new connections, in-flight frames answered,
    /// all threads joined.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.state.draining.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap_or_else(PoisonError::into_inner));
        for c in conns {
            let _ = c.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------
// Accept + connection threads
// ---------------------------------------------------------------------

fn accept_loop(
    listener: TcpListener,
    state: Arc<RouterState>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    max_connections: usize,
) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    while !state.draining.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if state.conns_live.load(Ordering::Acquire) >= max_connections {
                    refuse_busy(stream);
                    continue;
                }
                state.conns_live.fetch_add(1, Ordering::AcqRel);
                let st = Arc::clone(&state);
                let handle = std::thread::Builder::new()
                    .name("act-route-conn".to_string())
                    .spawn(move || {
                        // Decrement-on-exit guard so a panicking
                        // connection can never leak a connection slot.
                        struct Live<'a>(&'a RouterState);
                        impl Drop for Live<'_> {
                            fn drop(&mut self) {
                                self.0.conns_live.fetch_sub(1, Ordering::AcqRel);
                            }
                        }
                        let _live = Live(&st);
                        conn_loop(stream, &st);
                    })
                    .expect("spawn router connection thread");
                let mut guard = conns.lock().unwrap_or_else(PoisonError::into_inner);
                guard.push(handle);
                if guard.len() > 64 {
                    guard.retain(|h| !h.is_finished());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Answers a connection refused at the accept gate: one `BUSY` frame
/// (op 0, default retry hint), best effort, then close.
fn refuse_busy(mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let hint = proto::encode_retry_hint(proto::RETRY_AFTER_DEFAULT_MS);
    let frame = proto::encode_response(0, proto::STATUS_BUSY, 0, 0, &hint);
    let _ = stream.write_all(&frame);
}

/// One inbound connection: a lazily dialed client per shard (the pool),
/// frames answered in order until clean EOF, a malformed frame
/// (`BAD_REQUEST`, then close), or drain.
fn conn_loop(mut stream: TcpStream, state: &RouterState) {
    let _ = stream.set_nodelay(true);
    // The read timeout is the drain poll: at an idle frame boundary the
    // handler wakes, checks the draining flag, and exits cleanly. A
    // frame already being read is always finished and answered first —
    // drain never drops an accepted request.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    // Shard addresses were resolved once at router spawn; building the
    // pool is infallible. (The old `ResilientClient::new(..).expect(..)`
    // re-resolved per connection and could panic this thread on a
    // transient resolver failure — a crash for something retryable.)
    let mut clients: Vec<ResilientClient> = state
        .shard_addrs
        .iter()
        .map(|a| ResilientClient::from_resolved(*a, state.policy))
        .collect();
    loop {
        let body = match read_frame_drain_aware(&mut stream, state) {
            Ok(Some(body)) => body,
            Ok(None) => return,
            Err(_) => return,
        };
        let reply = match proto::decode_request(&body) {
            Ok(req) => route_request(state, &mut clients, req),
            Err(_) => {
                let frame = proto::encode_response(0, proto::STATUS_BAD_REQUEST, 0, 0, &[]);
                let _ = stream.write_all(&frame);
                return;
            }
        };
        if stream.write_all(&reply).is_err() {
            return;
        }
    }
}

/// [`proto::read_frame`] that treats a read timeout at an idle frame
/// boundary as a drain-check tick. Mid-frame the reader keeps waiting
/// (the bytes are coming; giving up would desynchronize the stream) —
/// drain only interrupts *between* frames.
fn read_frame_drain_aware(
    stream: &mut TcpStream,
    state: &RouterState,
) -> io::Result<Option<Vec<u8>>> {
    use std::io::Read;
    let mut len = [0u8; 4];
    let mut at = 0usize;
    while at < 4 {
        match stream.read(&mut len[at..]) {
            Ok(0) => {
                return if at == 0 {
                    Ok(None)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(k) => at += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if at == 0
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                if state.draining.load(Ordering::Acquire) {
                    return Ok(None);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e),
        }
    }
    let body_len = u32::from_le_bytes(len) as usize;
    if body_len > proto::MAX_REQ_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds the protocol's size cap",
        ));
    }
    let mut body = vec![0u8; body_len];
    let mut at = 0usize;
    while at < body_len {
        match stream.read(&mut body[at..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(k) => at += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(body))
}

fn route_request(
    state: &RouterState,
    clients: &mut [ResilientClient],
    req: proto::Request,
) -> Vec<u8> {
    match req {
        proto::Request::Probe { coords, exact } => route_probe(state, clients, &coords, exact),
        proto::Request::ProbeCells { cells } => route_probe_cells(state, clients, &cells),
        proto::Request::Ping => route_counters(state, clients, proto::OP_PING),
        proto::Request::Stats { histograms: false } => {
            route_counters(state, clients, proto::OP_STATS)
        }
        proto::Request::Stats { histograms: true } => route_stats_ex(state, clients),
        proto::Request::Dump => route_dump(state, clients),
    }
}

/// Partition → scatter → gather for one coordinate probe frame (module
/// docs tell the full story).
fn route_probe(
    state: &RouterState,
    clients: &mut [ResilientClient],
    coords: &[Coord],
    exact: bool,
) -> Vec<u8> {
    route_probe_frames(
        state,
        clients,
        coords,
        exact,
        coord_to_cell,
        |client, pts| client.probe(pts, exact),
    )
}

/// [`route_probe`] for the cell form ([`proto::FLAG_CELLS`]): shard
/// ownership comes straight off the cell id — no conversion anywhere on
/// the router — and the scatter forwards cell frames downstream so the
/// workers skip the conversion too.
fn route_probe_cells(
    state: &RouterState,
    clients: &mut [ResilientClient],
    cells: &[s2cell::CellId],
) -> Vec<u8> {
    route_probe_frames(
        state,
        clients,
        cells,
        false,
        |c| c,
        |client, pts| client.probe_cells(pts),
    )
}

/// The shared partition → scatter → gather engine behind both probe
/// forms; `to_cell` derives shard ownership, `send` forwards one
/// shard's sub-batch in whatever frame form arrived.
fn route_probe_frames<P, F>(
    state: &RouterState,
    clients: &mut [ResilientClient],
    points: &[P],
    exact: bool,
    to_cell: impl Fn(P) -> s2cell::CellId,
    send: F,
) -> Vec<u8>
where
    P: Copy + Sync,
    F: Fn(&mut ResilientClient, &[P]) -> Result<proto::ProbeReply, crate::ClientError> + Sync,
{
    let n = state.num_shards();
    if points.is_empty() {
        return proto::encode_response(proto::OP_PROBE, proto::STATUS_OK, 0, 0, &[]);
    }
    let mut per_shard: Vec<Vec<P>> = (0..n).map(|_| Vec::new()).collect();
    let mut owner = Vec::with_capacity(points.len());
    for &p in points {
        let s = shard_of_cell(to_cell(p), state.split_level, n);
        owner.push(s);
        per_shard[s].push(p);
    }

    let mut outcomes: Vec<Option<Outcome<proto::ProbeReply>>> = (0..n).map(|_| None).collect();
    let shard_probe = |k: usize, client: &mut ResilientClient, pts: &[P]| {
        if let Some(hint) = state.down_hint(k) {
            return Outcome::Shed(hint);
        }
        match send(client, pts) {
            Ok(reply) => {
                state.mark_up(k);
                Outcome::Ok(reply)
            }
            Err(e) => classify(state, k, &e),
        }
    };
    let participating = per_shard.iter().filter(|p| !p.is_empty()).count();
    if let Some(t) = &state.trace {
        t.sampled(
            "admission",
            &[
                ("lanes", points.len() as u64),
                ("shards", participating as u64),
                ("exact", u64::from(exact)),
            ],
        );
    }
    if participating == 1 {
        // Single-owner frame (the common case under geographic
        // locality): answer inline, no scatter threads to pay for.
        // Every point has the same owner, so the first point's owner
        // *is* the shard — no searching, nothing to `expect`, and a
        // connection thread that cannot panic on a routing assertion.
        let k = owner[0];
        outcomes[k] = Some(shard_probe(k, &mut clients[k], &per_shard[k]));
    } else {
        let shard_probe = &shard_probe;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (k, client) in clients.iter_mut().enumerate() {
                let pts = &per_shard[k];
                if pts.is_empty() {
                    continue;
                }
                handles.push((k, scope.spawn(move || shard_probe(k, client, pts))));
            }
            for (k, h) in handles {
                outcomes[k] = Some(h.join().unwrap_or(Outcome::Internal));
            }
        });
    }

    // Worst status wins; OK's epoch is the minimum participating epoch.
    let mut unsupported = false;
    let mut internal = false;
    let mut shed_hint: Option<u32> = None;
    let mut epoch = u32::MAX;
    for o in outcomes.iter().flatten() {
        match o {
            Outcome::Ok(reply) => epoch = epoch.min(reply.epoch),
            Outcome::Shed(h) => shed_hint = Some(shed_hint.map_or(*h, |x| x.max(*h))),
            Outcome::Unsupported => unsupported = true,
            Outcome::Internal => internal = true,
        }
    }
    if unsupported {
        return proto::encode_response(proto::OP_PROBE, proto::STATUS_UNSUPPORTED, 0, 0, &[]);
    }
    if internal {
        return proto::encode_response(proto::OP_PROBE, proto::STATUS_INTERNAL, 0, 0, &[]);
    }
    if let Some(hint) = shed_hint {
        let hint = hint.clamp(proto::RETRY_AFTER_MIN_MS, proto::RETRY_AFTER_MAX_MS);
        return proto::encode_response(
            proto::OP_PROBE,
            proto::STATUS_LOADSHED,
            0,
            0,
            &proto::encode_retry_hint(hint),
        );
    }

    // Gather: walk the request order, pulling each point's answer from
    // its owning shard's sub-reply (which preserved sub-batch order).
    let mut cursors = vec![0usize; n];
    let mut payload = Vec::new();
    for &s in &owner {
        let reply = match &outcomes[s] {
            Some(Outcome::Ok(r)) => r,
            _ => unreachable!("owning shard answered OK — statuses handled above"),
        };
        let mut refs = reply.refs[cursors[s]].clone();
        cursors[s] += 1;
        proto::dedup_refs(&mut refs);
        payload.extend_from_slice(&(refs.len() as u32).to_le_bytes());
        for (id, hit) in refs {
            payload.extend_from_slice(&proto::encode_ref(id, hit).to_le_bytes());
        }
    }
    proto::encode_response(
        proto::OP_PROBE,
        proto::STATUS_OK,
        epoch,
        points.len() as u32,
        &payload,
    )
}

/// PING/STATS fan out to every shard — bypassing cooldowns, so
/// monitoring sees ground truth and a recovered shard is noticed — and
/// merge into one fleet-wide counter block (min epoch).
fn route_counters(state: &RouterState, clients: &mut [ResilientClient], op: u8) -> Vec<u8> {
    let mut outcomes: Vec<Option<Outcome<(u32, CounterBlock)>>> =
        (0..state.num_shards()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (k, client) in clients.iter_mut().enumerate() {
            handles.push((
                k,
                scope.spawn(move || {
                    let result = if op == proto::OP_PING {
                        client.ping().map(|r| (r.epoch, r.counters))
                    } else {
                        client.stats().map(|r| (r.epoch, r.counters))
                    };
                    match result {
                        Ok(ok) => {
                            state.mark_up(k);
                            Outcome::Ok(ok)
                        }
                        Err(e) => match classify(state, k, &e) {
                            Outcome::Ok(_) => unreachable!("classify never constructs Ok"),
                            Outcome::Shed(h) => Outcome::Shed(h),
                            Outcome::Unsupported => Outcome::Unsupported,
                            Outcome::Internal => Outcome::Internal,
                        },
                    }
                }),
            ));
        }
        for (k, h) in handles {
            outcomes[k] = Some(h.join().unwrap_or(Outcome::Internal));
        }
    });

    let mut merged = CounterBlock::default();
    let mut unsupported = false;
    let mut internal = false;
    let mut shed_hint: Option<u32> = None;
    let mut epoch = u32::MAX;
    for o in outcomes.iter().flatten() {
        match o {
            Outcome::Ok((e, c)) => {
                epoch = epoch.min(*e);
                merged.merge(c);
            }
            Outcome::Shed(h) => shed_hint = Some(shed_hint.map_or(*h, |x| x.max(*h))),
            Outcome::Unsupported => unsupported = true,
            Outcome::Internal => internal = true,
        }
    }
    if unsupported {
        return proto::encode_response(op, proto::STATUS_UNSUPPORTED, 0, 0, &[]);
    }
    if internal {
        return proto::encode_response(op, proto::STATUS_INTERNAL, 0, 0, &[]);
    }
    if let Some(hint) = shed_hint {
        let hint = hint.clamp(proto::RETRY_AFTER_MIN_MS, proto::RETRY_AFTER_MAX_MS);
        return proto::encode_response(
            op,
            proto::STATUS_LOADSHED,
            0,
            0,
            &proto::encode_retry_hint(hint),
        );
    }
    proto::encode_response(
        op,
        proto::STATUS_OK,
        epoch,
        0,
        &proto::encode_counters(&merged),
    )
}

/// The flagged (v3) STATS fan-out: every shard's extended counters and
/// stage histograms, merged — counters via [`CounterBlock::merge`]
/// (sums, with both high-water marks taking the fleet **max**),
/// histograms via [`proto::merge_stage_histograms`] (bucket-wise sums,
/// which is exactly how log-bucketed histograms compose). Worst status
/// wins, as everywhere else on the router.
fn route_stats_ex(state: &RouterState, clients: &mut [ResilientClient]) -> Vec<u8> {
    let mut outcomes: Vec<Option<Outcome<proto::StatsExReply>>> =
        (0..state.num_shards()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (k, client) in clients.iter_mut().enumerate() {
            handles.push((
                k,
                scope.spawn(move || match client.stats_ex() {
                    Ok(r) => {
                        state.mark_up(k);
                        Outcome::Ok(r)
                    }
                    Err(e) => match classify(state, k, &e) {
                        Outcome::Ok(_) => unreachable!("classify never constructs Ok"),
                        Outcome::Shed(h) => Outcome::Shed(h),
                        Outcome::Unsupported => Outcome::Unsupported,
                        Outcome::Internal => Outcome::Internal,
                    },
                }),
            ));
        }
        for (k, h) in handles {
            outcomes[k] = Some(h.join().unwrap_or(Outcome::Internal));
        }
    });

    let mut merged = CounterBlock::default();
    let mut hists: Vec<proto::StageHistogram> = Vec::new();
    let mut unsupported = false;
    let mut internal = false;
    let mut shed_hint: Option<u32> = None;
    let mut epoch = u32::MAX;
    for o in outcomes.iter().flatten() {
        match o {
            Outcome::Ok(r) => {
                epoch = epoch.min(r.epoch);
                merged.merge(&r.counters);
                proto::merge_stage_histograms(&mut hists, &r.histograms);
            }
            Outcome::Shed(h) => shed_hint = Some(shed_hint.map_or(*h, |x| x.max(*h))),
            Outcome::Unsupported => unsupported = true,
            Outcome::Internal => internal = true,
        }
    }
    if unsupported {
        return proto::encode_response(proto::OP_STATS, proto::STATUS_UNSUPPORTED, 0, 0, &[]);
    }
    if internal {
        return proto::encode_response(proto::OP_STATS, proto::STATUS_INTERNAL, 0, 0, &[]);
    }
    if let Some(hint) = shed_hint {
        let hint = hint.clamp(proto::RETRY_AFTER_MIN_MS, proto::RETRY_AFTER_MAX_MS);
        return proto::encode_response(
            proto::OP_STATS,
            proto::STATUS_LOADSHED,
            0,
            0,
            &proto::encode_retry_hint(hint),
        );
    }
    proto::encode_response(
        proto::OP_STATS,
        proto::STATUS_OK,
        epoch,
        0,
        &proto::encode_stats_ex_payload(&merged, &hists),
    )
}

/// DUMP fan-out: the router's own trace (sampled admissions + breaker
/// transitions) first, then
/// each answering shard's trace window, in shard order (each line is a
/// self-contained JSON event). A shard without observability answers
/// UNSUPPORTED and is skipped; the fleet answer is UNSUPPORTED only when
/// *nothing* — router ring included — had a trace to give. Unreachable
/// shards are skipped too: a dump is a diagnostic window, and a partial
/// window beats a fleet-wide error while one shard restarts.
fn route_dump(state: &RouterState, clients: &mut [ResilientClient]) -> Vec<u8> {
    let mut parts: Vec<Option<String>> = (0..state.num_shards()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (k, client) in clients.iter_mut().enumerate() {
            handles.push((
                k,
                scope.spawn(move || match client.dump() {
                    Ok(lines) => {
                        state.mark_up(k);
                        Some(lines)
                    }
                    Err(e) => {
                        // UNSUPPORTED means alive-without-obs, not sick.
                        if !matches!(
                            &e,
                            ClientError::Server {
                                status: proto::STATUS_UNSUPPORTED,
                                ..
                            }
                        ) {
                            classify(state, k, &e);
                        }
                        None
                    }
                }),
            ));
        }
        for (k, h) in handles {
            parts[k] = h.join().unwrap_or(None);
        }
    });
    let own = state.trace.as_ref().map(|t| t.dump_json_lines());
    if own.is_none() && parts.iter().all(Option::is_none) {
        return proto::encode_response(proto::OP_DUMP, proto::STATUS_UNSUPPORTED, 0, 0, &[]);
    }
    let mut lines = own.unwrap_or_default();
    for p in parts.into_iter().flatten() {
        lines.push_str(&p);
    }
    proto::encode_response(proto::OP_DUMP, proto::STATUS_OK, 0, 0, lines.as_bytes())
}
