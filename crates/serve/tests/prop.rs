//! Property tests for the wire protocol's admission-control and
//! resilience surfaces: counter-block serialization (version 2, with
//! the version-1 compatibility decode), response framing across every
//! status (LOADSHED/BUSY included), the retry-after hint those two
//! statuses carry, STATS/PING requests, and probe request round trips —
//! alongside the example-based frame tests in `protocol.rs`.

use act_serve::protocol as proto;
use geom::Coord;
use proptest::prelude::*;

fn arb_counters() -> impl Strategy<Value = proto::CounterBlock> {
    proptest::collection::vec(any::<u64>(), 13).prop_map(|w| proto::CounterBlock {
        probes: w[0],
        accepted: w[1],
        answered: w[2],
        shed: w[3],
        bad_frames: w[4],
        busy: w[5],
        batches: w[6],
        swaps: w[7],
        queue_high_water_lanes: w[8],
        delta_applies: w[9],
        watch_errors: w[10],
        quarantines: w[11],
        panics_contained: w[12],
    })
}

fn arb_status() -> impl Strategy<Value = u8> {
    prop_oneof![
        Just(proto::STATUS_OK),
        Just(proto::STATUS_BAD_REQUEST),
        Just(proto::STATUS_UNSUPPORTED),
        Just(proto::STATUS_INTERNAL),
        Just(proto::STATUS_LOADSHED),
        Just(proto::STATUS_BUSY),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Counter blocks survive encode → decode bit-for-bit.
    #[test]
    fn counter_block_roundtrip(c in arb_counters()) {
        let bytes = proto::encode_counters(&c);
        prop_assert_eq!(bytes.len(), proto::COUNTER_BLOCK_LEN);
        prop_assert_eq!(proto::decode_counters(&bytes).unwrap(), c);
    }

    /// The protocol-version-2 bump is backward compatible: the first 80
    /// bytes of a v2 block ARE a v1 block, and decoding one yields the
    /// same ten legacy counters with the three v2 counters zeroed — a
    /// v2 client reading a v1 server never sees garbage.
    #[test]
    fn counter_block_v1_compat_decode(c in arb_counters()) {
        let bytes = proto::encode_counters(&c);
        let v1 = proto::decode_counters(&bytes[..proto::COUNTER_BLOCK_LEN_V1]).unwrap();
        prop_assert_eq!(
            v1,
            proto::CounterBlock {
                watch_errors: 0,
                quarantines: 0,
                panics_contained: 0,
                ..c
            }
        );
    }

    /// Any length that is neither the v2 nor the v1 block is a typed
    /// error, never a garbage decode.
    #[test]
    fn counter_block_rejects_wrong_lengths(c in arb_counters(), cut in 0usize..proto::COUNTER_BLOCK_LEN) {
        let bytes = proto::encode_counters(&c);
        if cut != proto::COUNTER_BLOCK_LEN_V1 {
            prop_assert!(proto::decode_counters(&bytes[..cut]).is_err());
        }
        let mut long = bytes.to_vec();
        long.push(0);
        prop_assert!(proto::decode_counters(&long).is_err());
    }

    /// Response frames round-trip for every status the server can send —
    /// LOADSHED and BUSY included — with the payload intact.
    #[test]
    fn response_roundtrip_every_status(
        op in 0u8..=3,
        status in arb_status(),
        epoch in any::<u32>(),
        n in 0u32..10_000,
        payload in proptest::collection::vec(0u8..=255, 0..96),
    ) {
        let frame = proto::encode_response(op, status, epoch, n, &payload);
        let body = proto::read_frame(&mut frame.as_slice(), usize::MAX).unwrap().unwrap();
        let (h, p) = proto::decode_response(&body).unwrap();
        prop_assert_eq!(h, proto::RespHeader { op, status, epoch, n });
        prop_assert_eq!(p, payload.as_slice());
    }

    /// The retry-after hint round-trips through a full LOADSHED frame
    /// for any millisecond value, and its absence (the v1 empty payload)
    /// decodes as `None` — both directions of the version bump.
    #[test]
    fn retry_hint_roundtrips_and_v1_absence_is_none(
        ms in any::<u32>(),
        status in prop_oneof![Just(proto::STATUS_LOADSHED), Just(proto::STATUS_BUSY)],
        epoch in any::<u32>(),
    ) {
        let frame = proto::encode_response(proto::OP_PROBE, status, epoch, 0, &proto::encode_retry_hint(ms));
        let body = proto::read_frame(&mut frame.as_slice(), usize::MAX).unwrap().unwrap();
        let (h, p) = proto::decode_response(&body).unwrap();
        prop_assert_eq!(h.n, 0, "a reject frame must not claim points");
        prop_assert_eq!(proto::decode_retry_after(p).unwrap(), Some(ms));
        prop_assert_eq!(proto::decode_retry_after(&[]).unwrap(), None);
    }

    /// Any hint payload that is neither empty nor exactly 4 bytes is a
    /// typed error.
    #[test]
    fn retry_hint_rejects_wrong_lengths(len in 1usize..16) {
        prop_assume!(len != proto::RETRY_HINT_LEN);
        prop_assert!(proto::decode_retry_after(&vec![0u8; len]).is_err());
    }

    /// The server-derived hint is always within the protocol's bounds,
    /// whatever the queue depth and drain-rate measurements — zero,
    /// huge, negative, or not yet warmed up (NaN/zero rate).
    #[test]
    fn suggested_retry_after_is_always_in_bounds(
        queued in any::<u64>(),
        rate in prop_oneof![
            Just(0.0f64),
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(-1.0f64),
            1e-9f64..1e9,
        ],
    ) {
        let ms = proto::suggest_retry_after_ms(queued, rate);
        prop_assert!((proto::RETRY_AFTER_MIN_MS..=proto::RETRY_AFTER_MAX_MS).contains(&ms));
    }

    /// PING and STATS responses carry a decodable counter block whatever
    /// the counter values are.
    #[test]
    fn ping_and_stats_replies_roundtrip(c in arb_counters(), epoch in any::<u32>()) {
        for op in [proto::OP_PING, proto::OP_STATS] {
            let frame = proto::encode_response(op, proto::STATUS_OK, epoch, 0, &proto::encode_counters(&c));
            let body = proto::read_frame(&mut frame.as_slice(), usize::MAX).unwrap().unwrap();
            let (h, p) = proto::decode_response(&body).unwrap();
            prop_assert_eq!((h.op, h.status, h.epoch, h.n), (op, proto::STATUS_OK, epoch, 0));
            prop_assert_eq!(proto::decode_counters(p).unwrap(), c);
        }
    }

    /// The header-only request frames decode back to their ops.
    #[test]
    fn headless_requests_roundtrip(which in proptest::bool::ANY) {
        let (frame, want) = if which {
            (proto::encode_ping_request(), proto::Request::Ping)
        } else {
            (proto::encode_stats_request(), proto::Request::Stats)
        };
        let body = proto::read_frame(&mut frame.as_slice(), proto::MAX_REQ_BODY).unwrap().unwrap();
        prop_assert_eq!(proto::decode_request(&body).unwrap(), want);
    }

    /// Probe requests round-trip for any finite coordinate set and flag.
    #[test]
    fn probe_request_roundtrip(
        pts in proptest::collection::vec((-180.0f64..180.0, -90.0f64..90.0), 0..64),
        exact in proptest::bool::ANY,
    ) {
        let coords: Vec<Coord> = pts.iter().map(|&(x, y)| Coord::new(x, y)).collect();
        let frame = proto::encode_probe_request(&coords, exact);
        let body = proto::read_frame(&mut frame.as_slice(), proto::MAX_REQ_BODY).unwrap().unwrap();
        prop_assert_eq!(proto::decode_request(&body).unwrap(), proto::Request::Probe { coords, exact });
    }
}
