//! Property tests for the wire protocol's new admission-control
//! surfaces: counter-block serialization, response framing across every
//! status (LOADSHED/BUSY included), STATS/PING requests, and probe
//! request round trips — alongside the example-based frame tests in
//! `protocol.rs`.

use act_serve::protocol as proto;
use geom::Coord;
use proptest::prelude::*;

fn arb_counters() -> impl Strategy<Value = proto::CounterBlock> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(probes, accepted, answered, shed, bad_frames, busy, batches, swaps, hw, deltas)| {
                proto::CounterBlock {
                    probes,
                    accepted,
                    answered,
                    shed,
                    bad_frames,
                    busy,
                    batches,
                    swaps,
                    queue_high_water_lanes: hw,
                    delta_applies: deltas,
                }
            },
        )
}

fn arb_status() -> impl Strategy<Value = u8> {
    prop_oneof![
        Just(proto::STATUS_OK),
        Just(proto::STATUS_BAD_REQUEST),
        Just(proto::STATUS_UNSUPPORTED),
        Just(proto::STATUS_INTERNAL),
        Just(proto::STATUS_LOADSHED),
        Just(proto::STATUS_BUSY),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Counter blocks survive encode → decode bit-for-bit.
    #[test]
    fn counter_block_roundtrip(c in arb_counters()) {
        let bytes = proto::encode_counters(&c);
        prop_assert_eq!(bytes.len(), proto::COUNTER_BLOCK_LEN);
        prop_assert_eq!(proto::decode_counters(&bytes).unwrap(), c);
    }

    /// Any truncation or extension of a counter block is a typed error,
    /// never a garbage decode.
    #[test]
    fn counter_block_rejects_wrong_lengths(c in arb_counters(), cut in 0usize..proto::COUNTER_BLOCK_LEN) {
        let bytes = proto::encode_counters(&c);
        prop_assert!(proto::decode_counters(&bytes[..cut]).is_err());
        let mut long = bytes.to_vec();
        long.push(0);
        prop_assert!(proto::decode_counters(&long).is_err());
    }

    /// Response frames round-trip for every status the server can send —
    /// LOADSHED and BUSY included — with the payload intact.
    #[test]
    fn response_roundtrip_every_status(
        op in 0u8..=3,
        status in arb_status(),
        epoch in any::<u32>(),
        n in 0u32..10_000,
        payload in proptest::collection::vec(0u8..=255, 0..96),
    ) {
        let frame = proto::encode_response(op, status, epoch, n, &payload);
        let body = proto::read_frame(&mut frame.as_slice(), usize::MAX).unwrap().unwrap();
        let (h, p) = proto::decode_response(&body).unwrap();
        prop_assert_eq!(h, proto::RespHeader { op, status, epoch, n });
        prop_assert_eq!(p, payload.as_slice());
    }

    /// PING and STATS responses carry a decodable counter block whatever
    /// the counter values are.
    #[test]
    fn ping_and_stats_replies_roundtrip(c in arb_counters(), epoch in any::<u32>()) {
        for op in [proto::OP_PING, proto::OP_STATS] {
            let frame = proto::encode_response(op, proto::STATUS_OK, epoch, 0, &proto::encode_counters(&c));
            let body = proto::read_frame(&mut frame.as_slice(), usize::MAX).unwrap().unwrap();
            let (h, p) = proto::decode_response(&body).unwrap();
            prop_assert_eq!((h.op, h.status, h.epoch, h.n), (op, proto::STATUS_OK, epoch, 0));
            prop_assert_eq!(proto::decode_counters(p).unwrap(), c);
        }
    }

    /// The header-only request frames decode back to their ops.
    #[test]
    fn headless_requests_roundtrip(which in proptest::bool::ANY) {
        let (frame, want) = if which {
            (proto::encode_ping_request(), proto::Request::Ping)
        } else {
            (proto::encode_stats_request(), proto::Request::Stats)
        };
        let body = proto::read_frame(&mut frame.as_slice(), proto::MAX_REQ_BODY).unwrap().unwrap();
        prop_assert_eq!(proto::decode_request(&body).unwrap(), want);
    }

    /// Probe requests round-trip for any finite coordinate set and flag.
    #[test]
    fn probe_request_roundtrip(
        pts in proptest::collection::vec((-180.0f64..180.0, -90.0f64..90.0), 0..64),
        exact in proptest::bool::ANY,
    ) {
        let coords: Vec<Coord> = pts.iter().map(|&(x, y)| Coord::new(x, y)).collect();
        let frame = proto::encode_probe_request(&coords, exact);
        let body = proto::read_frame(&mut frame.as_slice(), proto::MAX_REQ_BODY).unwrap().unwrap();
        prop_assert_eq!(proto::decode_request(&body).unwrap(), proto::Request::Probe { coords, exact });
    }
}
