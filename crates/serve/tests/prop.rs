//! Property tests for the wire protocol's admission-control and
//! resilience surfaces: counter-block serialization across every
//! protocol version (v1 × v2 × v3 × v4 compatibility matrix), response
//! framing across every status (LOADSHED/BUSY included), the
//! retry-after hint those two statuses carry, the header-only request
//! ops (PING, STATS plain and flagged, DUMP), probe request round
//! trips, and the flagged-STATS histogram section (round trip plus
//! typed rejection of truncated, oversized, and padded malformations) —
//! alongside the example-based frame tests in `protocol.rs`.

use act_serve::protocol as proto;
use geom::Coord;
use proptest::prelude::*;

fn arb_counters() -> impl Strategy<Value = proto::CounterBlock> {
    proptest::collection::vec(any::<u64>(), 17).prop_map(|w| proto::CounterBlock {
        probes: w[0],
        accepted: w[1],
        answered: w[2],
        shed: w[3],
        bad_frames: w[4],
        busy: w[5],
        batches: w[6],
        swaps: w[7],
        queue_high_water_lanes: w[8],
        delta_applies: w[9],
        watch_errors: w[10],
        quarantines: w[11],
        panics_contained: w[12],
        window_high_water_lanes: w[13],
        cache_hits: w[14],
        cache_misses: w[15],
        quota_sheds: w[16],
    })
}

fn arb_status() -> impl Strategy<Value = u8> {
    prop_oneof![
        Just(proto::STATUS_OK),
        Just(proto::STATUS_BAD_REQUEST),
        Just(proto::STATUS_UNSUPPORTED),
        Just(proto::STATUS_INTERNAL),
        Just(proto::STATUS_LOADSHED),
        Just(proto::STATUS_BUSY),
    ]
}

/// A wire histogram: an arbitrary stage id (unknown ids must survive),
/// a sum, and a smallish bucket vector (the format's cap is
/// `act_obs::NUM_BUCKETS`; correctness does not depend on size).
fn arb_hist() -> impl Strategy<Value = proto::StageHistogram> {
    // Counts/sums stay below 2^32 so cross-shard merges (sums of sums)
    // cannot overflow in the arithmetic the assertions do on them.
    (
        0u8..12,
        0u64..(1 << 32),
        proptest::collection::vec(0u64..(1 << 32), 0..48),
    )
        .prop_map(|(stage, sum, buckets)| proto::StageHistogram {
            stage,
            hist: act_obs::HistogramSnapshot { sum, buckets },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The version compatibility matrix in one property. A v4 (extended,
    /// 17-word) block's prefixes ARE the older blocks: decoding the
    /// first 80 bytes is the v1 read (newer counters zero), the first
    /// 104 the v2 read (windowed mark zero), the first 112 the v3 read
    /// (cache/quota counters zero), and the full 136 returns every
    /// field — so any client version reading any server version's
    /// block sees exactly the fields its protocol knows, never garbage.
    #[test]
    fn counter_block_version_matrix(c in arb_counters()) {
        let v4 = proto::encode_counters_ex(&c);
        prop_assert_eq!(v4.len(), proto::COUNTER_BLOCK_LEN_V4);

        // v4 → v4: bit-for-bit.
        prop_assert_eq!(proto::decode_counters(&v4).unwrap(), c);

        // v4 → v3 prefix: everything but the cache/quota counters.
        prop_assert_eq!(
            proto::decode_counters(&v4[..proto::COUNTER_BLOCK_LEN_V3]).unwrap(),
            proto::CounterBlock { cache_hits: 0, cache_misses: 0, quota_sheds: 0, ..c }
        );

        // v4 → v2 prefix: the plain block, windowed mark zeroed too.
        // The plain encoder emits exactly this prefix.
        let v2 = proto::encode_counters(&c);
        prop_assert_eq!(v2.len(), proto::COUNTER_BLOCK_LEN);
        prop_assert_eq!(&v4[..proto::COUNTER_BLOCK_LEN], &v2[..]);
        prop_assert_eq!(
            proto::decode_counters(&v2).unwrap(),
            proto::CounterBlock {
                window_high_water_lanes: 0,
                cache_hits: 0,
                cache_misses: 0,
                quota_sheds: 0,
                ..c
            }
        );

        // v4 → v1 prefix: the ten legacy counters, everything newer zero.
        let v1 = proto::decode_counters(&v4[..proto::COUNTER_BLOCK_LEN_V1]).unwrap();
        prop_assert_eq!(
            v1,
            proto::CounterBlock {
                watch_errors: 0,
                quarantines: 0,
                panics_contained: 0,
                window_high_water_lanes: 0,
                cache_hits: 0,
                cache_misses: 0,
                quota_sheds: 0,
                ..c
            }
        );
    }

    /// Any length that is not exactly a v1, v2, v3, or v4 block is a
    /// typed error, never a garbage decode.
    #[test]
    fn counter_block_rejects_wrong_lengths(
        c in arb_counters(),
        cut in 0usize..proto::COUNTER_BLOCK_LEN_V4,
    ) {
        let bytes = proto::encode_counters_ex(&c);
        if cut != proto::COUNTER_BLOCK_LEN_V1
            && cut != proto::COUNTER_BLOCK_LEN
            && cut != proto::COUNTER_BLOCK_LEN_V3
        {
            prop_assert!(proto::decode_counters(&bytes[..cut]).is_err());
        }
        let mut long = bytes.to_vec();
        long.push(0);
        prop_assert!(proto::decode_counters(&long).is_err());
    }

    /// Response frames round-trip for every status the server can send —
    /// LOADSHED and BUSY included — with the payload intact.
    #[test]
    fn response_roundtrip_every_status(
        op in 0u8..=4,
        status in arb_status(),
        epoch in any::<u32>(),
        n in 0u32..10_000,
        payload in proptest::collection::vec(0u8..=255, 0..96),
    ) {
        let frame = proto::encode_response(op, status, epoch, n, &payload);
        let body = proto::read_frame(&mut frame.as_slice(), usize::MAX).unwrap().unwrap();
        let (h, p) = proto::decode_response(&body).unwrap();
        prop_assert_eq!(h, proto::RespHeader { op, status, epoch, n });
        prop_assert_eq!(p, payload.as_slice());
    }

    /// The retry-after hint round-trips through a full LOADSHED frame
    /// for any millisecond value, and its absence (the v1 empty payload)
    /// decodes as `None` — both directions of the version bump.
    #[test]
    fn retry_hint_roundtrips_and_v1_absence_is_none(
        ms in any::<u32>(),
        status in prop_oneof![Just(proto::STATUS_LOADSHED), Just(proto::STATUS_BUSY)],
        epoch in any::<u32>(),
    ) {
        let frame = proto::encode_response(proto::OP_PROBE, status, epoch, 0, &proto::encode_retry_hint(ms));
        let body = proto::read_frame(&mut frame.as_slice(), usize::MAX).unwrap().unwrap();
        let (h, p) = proto::decode_response(&body).unwrap();
        prop_assert_eq!(h.n, 0, "a reject frame must not claim points");
        prop_assert_eq!(proto::decode_retry_after(p).unwrap(), Some(ms));
        prop_assert_eq!(proto::decode_retry_after(&[]).unwrap(), None);
    }

    /// Any hint payload that is neither empty nor exactly 4 bytes is a
    /// typed error.
    #[test]
    fn retry_hint_rejects_wrong_lengths(len in 1usize..16) {
        prop_assume!(len != proto::RETRY_HINT_LEN);
        prop_assert!(proto::decode_retry_after(&vec![0u8; len]).is_err());
    }

    /// The server-derived hint is always within the protocol's bounds,
    /// whatever the queue depth and drain-rate measurements — zero,
    /// huge, negative, or not yet warmed up (NaN/zero rate).
    #[test]
    fn suggested_retry_after_is_always_in_bounds(
        queued in any::<u64>(),
        rate in prop_oneof![
            Just(0.0f64),
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(-1.0f64),
            1e-9f64..1e9,
        ],
    ) {
        let ms = proto::suggest_retry_after_ms(queued, rate);
        prop_assert!((proto::RETRY_AFTER_MIN_MS..=proto::RETRY_AFTER_MAX_MS).contains(&ms));
    }

    /// PING and plain STATS responses carry a decodable counter block
    /// whatever the counter values are (and drop the windowed mark —
    /// that field travels only in the flagged reply).
    #[test]
    fn ping_and_stats_replies_roundtrip(c in arb_counters(), epoch in any::<u32>()) {
        for op in [proto::OP_PING, proto::OP_STATS] {
            let frame = proto::encode_response(op, proto::STATUS_OK, epoch, 0, &proto::encode_counters(&c));
            let body = proto::read_frame(&mut frame.as_slice(), usize::MAX).unwrap().unwrap();
            let (h, p) = proto::decode_response(&body).unwrap();
            prop_assert_eq!((h.op, h.status, h.epoch, h.n), (op, proto::STATUS_OK, epoch, 0));
            prop_assert_eq!(
                proto::decode_counters(p).unwrap(),
                proto::CounterBlock {
                    window_high_water_lanes: 0,
                    cache_hits: 0,
                    cache_misses: 0,
                    quota_sheds: 0,
                    ..c
                }
            );
        }
    }

    /// Every header-only request frame decodes back to its op — the
    /// flagged STATS (v3 opt-in) included, and distinguished from the
    /// plain one by the flag alone.
    #[test]
    fn headless_requests_roundtrip(which in 0usize..4) {
        let (frame, want) = match which {
            0 => (proto::encode_ping_request(), proto::Request::Ping),
            1 => (proto::encode_stats_request(), proto::Request::Stats { histograms: false }),
            2 => (proto::encode_stats_ex_request(), proto::Request::Stats { histograms: true }),
            _ => (proto::encode_dump_request(), proto::Request::Dump),
        };
        let body = proto::read_frame(&mut frame.as_slice(), proto::MAX_REQ_BODY).unwrap().unwrap();
        prop_assert_eq!(proto::decode_request(&body).unwrap(), want);
    }

    /// Probe requests round-trip for any finite coordinate set and flag.
    #[test]
    fn probe_request_roundtrip(
        pts in proptest::collection::vec((-180.0f64..180.0, -90.0f64..90.0), 0..64),
        exact in proptest::bool::ANY,
    ) {
        let coords: Vec<Coord> = pts.iter().map(|&(x, y)| Coord::new(x, y)).collect();
        let frame = proto::encode_probe_request(&coords, exact);
        let body = proto::read_frame(&mut frame.as_slice(), proto::MAX_REQ_BODY).unwrap().unwrap();
        prop_assert_eq!(proto::decode_request(&body).unwrap(), proto::Request::Probe { coords, exact });
    }

    /// The flagged-STATS payload (extended counters + histogram section)
    /// round-trips for any histogram set that fits the caps.
    #[test]
    fn stats_ex_payload_roundtrip(
        c in arb_counters(),
        hists in proptest::collection::vec(arb_hist(), 0..8),
    ) {
        let payload = proto::encode_stats_ex_payload(&c, &hists);
        let (dc, dh) = proto::decode_stats_ex_payload(&payload).unwrap();
        prop_assert_eq!(dc, c);
        prop_assert_eq!(dh, hists);
    }

    /// EVERY strict prefix of a flagged-STATS payload is a typed error —
    /// truncation can never silently drop a histogram or a bucket — and
    /// so is any trailing garbage after the section.
    #[test]
    fn stats_ex_payload_rejects_any_truncation(
        c in arb_counters(),
        hists in proptest::collection::vec(arb_hist(), 0..4),
        frac in 0.0f64..1.0,
    ) {
        let payload = proto::encode_stats_ex_payload(&c, &hists);
        let cut = ((payload.len() as f64) * frac) as usize; // < len
        prop_assert!(proto::decode_stats_ex_payload(&payload[..cut]).is_err());
        let mut long = payload.clone();
        long.push(0);
        prop_assert!(proto::decode_stats_ex_payload(&long).is_err());
    }

    /// Oversized claims are rejected before any allocation is attempted:
    /// a histogram count past the section cap, and a bucket count past
    /// the format's bucket space.
    #[test]
    fn stats_ex_payload_rejects_oversized_claims(
        c in arb_counters(),
        extra in 1u32..1000,
    ) {
        // n_hists over the cap.
        let mut p = proto::encode_stats_ex_payload(&c, &[]);
        let n = proto::MAX_WIRE_HISTS as u32 + extra;
        p[proto::COUNTER_BLOCK_LEN_V4..proto::COUNTER_BLOCK_LEN_V4 + 4]
            .copy_from_slice(&n.to_le_bytes());
        prop_assert!(proto::decode_stats_ex_payload(&p).is_err());

        // n_buckets over the format's bucket count.
        let hist = proto::StageHistogram {
            stage: 0,
            hist: act_obs::HistogramSnapshot { sum: 0, buckets: vec![1] },
        };
        let mut p = proto::encode_stats_ex_payload(&c, &[hist]);
        let at = proto::COUNTER_BLOCK_LEN_V4 + 4 + 12; // n_buckets field
        let n = act_obs::NUM_BUCKETS as u32 + extra;
        p[at..at + 4].copy_from_slice(&n.to_le_bytes());
        prop_assert!(proto::decode_stats_ex_payload(&p).is_err());
    }

    /// Nonzero pad bytes in a histogram header are a typed error (the
    /// pad is reserved; tolerating garbage there would foreclose ever
    /// using it).
    #[test]
    fn stats_ex_payload_rejects_nonzero_pad(
        c in arb_counters(),
        which in 0usize..3,
        byte in 1u8..=255,
    ) {
        let hist = proto::StageHistogram {
            stage: 1,
            hist: act_obs::HistogramSnapshot { sum: 9, buckets: vec![2, 0, 1] },
        };
        let mut p = proto::encode_stats_ex_payload(&c, &[hist]);
        p[proto::COUNTER_BLOCK_LEN_V4 + 4 + 1 + which] = byte;
        prop_assert!(proto::decode_stats_ex_payload(&p).is_err());
    }

    /// Router merge semantics: merging any two shard sections sums
    /// counts bucket-wise per stage, unions the stage sets, and keeps
    /// the result sorted — so the router's merged reply equals the
    /// client-side merge of the per-shard replies.
    #[test]
    fn stage_histogram_merge_is_commutative_union(
        a in proptest::collection::vec(arb_hist(), 0..6),
        b in proptest::collection::vec(arb_hist(), 0..6),
    ) {
        let mut ab: Vec<proto::StageHistogram> = Vec::new();
        proto::merge_stage_histograms(&mut ab, &a);
        proto::merge_stage_histograms(&mut ab, &b);
        let mut ba: Vec<proto::StageHistogram> = Vec::new();
        proto::merge_stage_histograms(&mut ba, &b);
        proto::merge_stage_histograms(&mut ba, &a);

        // Same stages, sorted, and per-stage totals match in both orders.
        prop_assert!(ab.windows(2).all(|w| w[0].stage < w[1].stage));
        prop_assert_eq!(ab.len(), ba.len());
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert_eq!(x.stage, y.stage);
            prop_assert_eq!(x.hist.count(), y.hist.count());
            prop_assert_eq!(x.hist.sum, y.hist.sum);
        }
        let want: u64 = a.iter().chain(&b).map(|h| h.hist.count()).sum();
        let got: u64 = ab.iter().map(|h| h.hist.count()).sum();
        prop_assert_eq!(got, want, "merge must not lose or invent counts");
    }
}
