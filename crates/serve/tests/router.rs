//! End-to-end tests for the sharded serving stack: sharder → worker
//! fleet → scatter-gather router, all over the real TCP protocol.
//!
//! The oracle tests assert the tentpole invariant literally: a routed
//! probe answers **identically** to the unsharded index — per point and
//! in aggregate against `join_approx_coords` / `join_exact` — including
//! points straddling shard seams. The chaos tests exercise the failure
//! surface: rolling per-shard hot-swap (full snapshots and delta files)
//! under continuous load with zero failed requests, and a worker killed
//! mid-fleet surfacing as a typed error or a correct shed — never a
//! hang, never a wrong answer.

use act_core::{
    coord_to_cell, header_checksum, join_approx_coords, join_exact, save_delta_file, shard_of_cell,
    shard_paths, split_index, write_shard_files, ActIndex, DeltaLink, DeltaOp, Refiner,
    DEFAULT_SPLIT_LEVEL,
};
use act_serve::{
    delta_path, Client, ClientError, ResilientClient, RetryPolicy, Router, RouterConfig,
    ServeConfig, Server, ServerHandle,
};
use geom::{Coord, Polygon, Ring};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn square(cx: f64, cy: f64, half: f64) -> Polygon {
    Polygon::new(
        Ring::new(vec![
            Coord::new(cx - half, cy - half),
            Coord::new(cx + half, cy - half),
            Coord::new(cx + half, cy + half),
            Coord::new(cx - half, cy + half),
        ]),
        vec![],
    )
}

/// Polygons spread across faces (NYC cluster, equator cluster, a
/// near-pole shape) so any shard count produces real seams.
fn fleet_polys() -> Vec<Polygon> {
    let mut polys = Vec::new();
    for k in 0..8 {
        polys.push(square(-74.0 + 0.05 * k as f64, 40.7, 0.02));
    }
    for k in 0..4 {
        polys.push(square(0.4 * k as f64, 0.2, 0.08));
    }
    polys.push(square(10.0, 88.5, 0.5));
    polys
}

/// A probe grid covering the polygon clusters, their boundaries, and
/// plenty of misses.
fn probe_grid() -> Vec<Coord> {
    let mut pts = Vec::new();
    for gx in 0..40 {
        for gy in 0..4 {
            pts.push(Coord::new(
                -74.15 + 0.015 * gx as f64,
                40.63 + 0.045 * gy as f64,
            ));
        }
    }
    for gx in 0..20 {
        pts.push(Coord::new(-0.2 + 0.1 * gx as f64, 0.2));
    }
    pts.push(Coord::new(10.0, 88.5));
    pts.push(Coord::new(179.0, -45.0)); // far miss, another face
    pts
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("act-router-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Sharder → workers → router, returning every handle (drop order:
/// router first, then workers).
fn spawn_fleet(
    index: &ActIndex,
    dir: &Path,
    num_shards: usize,
    worker_config: impl Fn() -> ServeConfig,
) -> (Vec<ServerHandle>, act_serve::RouterHandle) {
    let paths = write_shard_files(index, dir, DEFAULT_SPLIT_LEVEL, num_shards).unwrap();
    let workers: Vec<ServerHandle> = paths
        .iter()
        .map(|p| Server::spawn(p, worker_config()).unwrap())
        .collect();
    let addrs = workers.iter().map(|w| w.addr()).collect();
    let router = Router::spawn(addrs, RouterConfig::default()).unwrap();
    (workers, router)
}

fn sorted(mut refs: Vec<(u32, bool)>) -> Vec<(u32, bool)> {
    refs.sort_unstable();
    refs
}

#[test]
fn routed_probes_match_the_unsharded_oracle() {
    let polys = fleet_polys();
    let idx = ActIndex::build(&polys, 15.0).unwrap();
    let pts = probe_grid();
    for num_shards in [1usize, 3] {
        let dir = fresh_dir(&format!("oracle-{num_shards}"));
        let (workers, router) = spawn_fleet(&idx, &dir, num_shards, || ServeConfig {
            watch: None,
            ..ServeConfig::default()
        });
        let mut client = Client::connect(router.addr()).unwrap();
        let reply = client.probe(&pts, false).unwrap();
        assert_eq!(reply.epoch, 1, "fresh fleet serves epoch 1 everywhere");
        assert_eq!(reply.refs.len(), pts.len());

        // Per point: exactly the unsharded index's answer.
        let mut counts = vec![0u64; polys.len()];
        for (c, got) in pts.iter().zip(&reply.refs) {
            assert_eq!(
                *got,
                sorted(idx.lookup_refs(*c)),
                "at {c} ({num_shards} shards)"
            );
            for &(id, _) in got {
                counts[id as usize] += 1;
            }
        }
        // In aggregate: exactly the paper's approximate join.
        let mut want = vec![0u64; polys.len()];
        join_approx_coords(&idx, &pts, &mut want);
        assert_eq!(counts, want, "{num_shards} shards");

        router.shutdown();
        for w in workers {
            w.shutdown();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn routed_exact_mode_matches_join_exact_and_unsupported_forwards() {
    let polys = fleet_polys();
    let idx = ActIndex::build(&polys, 15.0).unwrap();
    let pts = probe_grid();
    let dir = fresh_dir("exact");

    // Refiner-equipped workers: routed exact == join_exact. The refiner
    // is built over the full polygon set — shard refs keep global ids.
    let (workers, router) = spawn_fleet(&idx, &dir, 2, || ServeConfig {
        refiner: Some(Refiner::new(&fleet_polys())),
        watch: None,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(router.addr()).unwrap();
    let reply = client.probe(&pts, true).unwrap();
    let mut counts = vec![0u64; polys.len()];
    for refs in &reply.refs {
        for &(id, hit) in refs {
            assert!(hit, "exact mode reports members only");
            counts[id as usize] += 1;
        }
    }
    let refiner = Refiner::new(&polys);
    let mut want = vec![0u64; polys.len()];
    join_exact(&idx, &refiner, &pts, &mut want);
    assert_eq!(counts, want);
    router.shutdown();
    for w in workers {
        w.shutdown();
    }

    // Refiner-less workers: the fleet-wide capability gap forwards as
    // UNSUPPORTED (not INTERNAL, not a hang).
    let (workers, router) = spawn_fleet(&idx, &dir, 2, || ServeConfig {
        watch: None,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(router.addr()).unwrap();
    match client.probe(&pts, true) {
        Err(ClientError::Server { status, .. }) => {
            assert_eq!(status, act_serve::protocol::STATUS_UNSUPPORTED)
        }
        other => panic!("expected UNSUPPORTED through the router, got {other:?}"),
    }
    // The connection survives and approx mode still answers.
    assert_eq!(client.probe(&pts, false).unwrap().refs.len(), pts.len());
    router.shutdown();
    for w in workers {
        w.shutdown();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn router_merges_fleet_counters_and_reports_min_epoch() {
    let polys = fleet_polys();
    let idx = ActIndex::build(&polys, 15.0).unwrap();
    let pts = probe_grid();
    let dir = fresh_dir("counters");
    let (workers, router) = spawn_fleet(&idx, &dir, 3, || ServeConfig {
        watch: None,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(router.addr()).unwrap();
    client.probe(&pts, false).unwrap();

    // The merged block sums every shard's counters: each probe point
    // was answered by exactly one worker, so fleet probes == points.
    let ping = client.ping().unwrap();
    assert_eq!(ping.epoch, 1, "min epoch across the fleet");
    assert_eq!(ping.probes_served, pts.len() as u64);
    assert_eq!(
        ping.counters.accepted,
        ping.counters.answered + ping.counters.shed
    );
    let stats = client.stats().unwrap();
    assert_eq!(stats.counters.probes, pts.len() as u64);
    assert_eq!(stats.counters.shed, 0);

    // Worker-side cross-check: the fleet total is the sum of parts.
    let worker_probes: u64 = workers.iter().map(|w| w.stats().probes).sum();
    assert_eq!(worker_probes, pts.len() as u64);

    router.shutdown();
    for w in workers {
        w.shutdown();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Rolling per-shard hot-swap under continuous load: a full snapshot
/// replacement per shard, then a delta file per shard, with a client
/// hammering the router throughout. Zero failed requests, and every
/// answer matches one of the three index versions exactly.
#[test]
fn rolling_hot_swap_full_and_delta_under_load_drops_nothing() {
    let polys0 = fleet_polys();
    let idx0 = ActIndex::build(&polys0, 15.0).unwrap();

    // Version 1: one more NYC polygon (overlapping the cluster, so the
    // swap is not a pure addition). Version 2: a delta polygon in empty
    // territory, broadcast to every shard.
    let mut polys1 = polys0.clone();
    polys1.push(square(-73.87, 40.72, 0.03));
    let idx1 = ActIndex::build(&polys1, 15.0).unwrap();
    let delta_poly = square(-73.0, 41.5, 0.05);
    let mut polys2 = polys1.clone();
    polys2.push(delta_poly.clone());
    let idx2 = ActIndex::build(&polys2, 15.0).unwrap();

    let mut pts = probe_grid();
    pts.push(Coord::new(-73.87, 40.72)); // inside the swapped-in polygon
    pts.push(Coord::new(-73.0, 41.5)); // inside the delta polygon

    const NUM_SHARDS: usize = 2;
    let dir = fresh_dir("rolling");
    let (workers, router) = spawn_fleet(&idx0, &dir, NUM_SHARDS, || ServeConfig {
        watch: Some(Duration::from_millis(50)),
        ..ServeConfig::default()
    });
    let paths = shard_paths(&dir, NUM_SHARDS);

    // Any answer must be exactly one version's answer, per point.
    let allowed: Vec<[Vec<(u32, bool)>; 3]> = pts
        .iter()
        .map(|&c| {
            [
                sorted(idx0.lookup_refs(c)),
                sorted(idx1.lookup_refs(c)),
                sorted(idx2.lookup_refs(c)),
            ]
        })
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let load = {
        let stop = Arc::clone(&stop);
        let pts = pts.clone();
        let addr = router.addr();
        std::thread::spawn(move || -> (u64, Vec<String>) {
            let mut client = ResilientClient::new(addr, RetryPolicy::default()).unwrap();
            let mut requests = 0u64;
            let mut wrong = Vec::new();
            while !stop.load(Ordering::Acquire) {
                match client.probe(&pts, false) {
                    Ok(reply) => {
                        requests += 1;
                        for (i, got) in reply.refs.iter().enumerate() {
                            if !(0..3).any(|v| *got == allowed[i][v]) {
                                wrong.push(format!(
                                    "point {:?}: got {got:?}, allowed {:?}",
                                    pts[i], allowed[i]
                                ));
                            }
                        }
                    }
                    Err(e) => wrong.push(format!("request failed: {e}")),
                }
            }
            (requests, wrong)
        })
    };

    let wait_epoch = |k: usize, at_least: u32| {
        let deadline = Instant::now() + Duration::from_secs(10);
        while workers[k].epoch() < at_least {
            assert!(
                Instant::now() < deadline,
                "worker {k} never reached epoch {at_least}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    };

    std::thread::sleep(Duration::from_millis(100)); // load is flowing

    // Phase 1 — rolling full swap, one shard at a time.
    let shards1 = split_index(&idx1, DEFAULT_SPLIT_LEVEL, NUM_SHARDS);
    for (k, path) in paths.iter().enumerate() {
        let mut bytes = Vec::new();
        shards1[k].save_snapshot(&mut bytes).unwrap();
        let tmp = path.with_extension("swap.tmp");
        std::fs::write(&tmp, &bytes).unwrap();
        std::fs::rename(&tmp, path).unwrap();
        wait_epoch(k, 2);
    }

    // Phase 2 — rolling delta apply: the same insert broadcast to every
    // shard (the sharded-deltas recipe — each shard holds the polygon,
    // so whichever shard owns a probing point answers with it).
    for (k, path) in paths.iter().enumerate() {
        let base = header_checksum(&std::fs::read(path).unwrap()).unwrap();
        let ops = [DeltaOp::Insert {
            id: polys1.len() as u32,
            polygon: delta_poly.clone(),
        }];
        save_delta_file(&ops, DeltaLink::for_base(base), &delta_path(path, 1)).unwrap();
        wait_epoch(k, 3);
    }

    std::thread::sleep(Duration::from_millis(100)); // load sees the end state
    stop.store(true, Ordering::Release);
    let (requests, wrong) = load.join().unwrap();
    assert!(requests > 0, "the load thread must actually have run");
    assert!(
        wrong.is_empty(),
        "{} violations, first: {}",
        wrong.len(),
        wrong[0]
    );

    // The fleet's merged counters record the rolling update: every
    // worker published twice (full swap + delta), and the delta path
    // was the one actually taken.
    let mut client = Client::connect(router.addr()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.epoch, 3, "both shards reached epoch 3");
    assert_eq!(stats.counters.swaps, 2 * NUM_SHARDS as u64);
    assert_eq!(stats.counters.delta_applies, NUM_SHARDS as u64);
    assert_eq!(stats.counters.quarantines, 0);

    // And the steady end state answers exactly like the full version-2
    // index.
    let reply = client.probe(&pts, false).unwrap();
    for (c, got) in pts.iter().zip(&reply.refs) {
        assert_eq!(*got, sorted(idx2.lookup_refs(*c)), "end state at {c}");
    }

    router.shutdown();
    for w in workers {
        w.shutdown();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A worker killed under the router surfaces as a typed INTERNAL error
/// for batches needing its shard, then as an immediate LOADSHED with a
/// retry hint while the shard's cooldown runs — and batches owned
/// entirely by surviving shards keep answering correctly throughout.
#[test]
fn worker_death_yields_typed_errors_and_cooldown_sheds_not_hangs_or_lies() {
    let polys = fleet_polys();
    let idx = ActIndex::build(&polys, 15.0).unwrap();
    const NUM_SHARDS: usize = 2;
    let dir = fresh_dir("kill");
    let (workers, router) = spawn_fleet(&idx, &dir, NUM_SHARDS, || ServeConfig {
        watch: None,
        ..ServeConfig::default()
    });

    // Partition the grid by owning shard; both shards must own points
    // (the polygon spread guarantees it).
    let mut by_shard: Vec<Vec<Coord>> = vec![Vec::new(); NUM_SHARDS];
    for c in probe_grid() {
        by_shard[shard_of_cell(coord_to_cell(c), DEFAULT_SPLIT_LEVEL, NUM_SHARDS)].push(c);
    }
    assert!(by_shard.iter().all(|v| !v.is_empty()));
    let mixed: Vec<Coord> = by_shard.iter().flat_map(|v| v.iter().copied()).collect();

    let mut client = Client::connect(router.addr()).unwrap();
    assert_eq!(client.probe(&mixed, false).unwrap().refs.len(), mixed.len());

    // Kill shard 1's worker (graceful drain, then the port goes dead).
    let mut workers: Vec<Option<ServerHandle>> = workers.into_iter().map(Some).collect();
    workers[1].take().unwrap().shutdown();

    // A batch needing the dead shard: a typed error, promptly. The
    // router burns its client's retry budget once, classifies the
    // exhausted IO failure as INTERNAL, and opens the cooldown.
    let t = Instant::now();
    match client.probe(&mixed, false) {
        Err(ClientError::Server { status, .. }) => {
            assert_eq!(status, act_serve::protocol::STATUS_INTERNAL)
        }
        other => panic!("expected INTERNAL for the dead shard, got {other:?}"),
    }
    assert!(
        t.elapsed() < Duration::from_secs(8),
        "the dead-shard error must arrive promptly, not hang"
    );

    // Inside the cooldown window: an immediate shed with a hint — the
    // retry budget is not burned again per request.
    let t = Instant::now();
    match client.probe(&mixed, false) {
        Err(ClientError::Server {
            status,
            retry_after_ms,
        }) => {
            assert_eq!(status, act_serve::protocol::STATUS_LOADSHED);
            let hint = retry_after_ms.expect("a cooldown shed carries the remaining window");
            assert!(hint <= 250, "hint is the remaining cooldown, got {hint}");
        }
        other => panic!("expected LOADSHED during cooldown, got {other:?}"),
    }
    assert!(
        t.elapsed() < Duration::from_millis(500),
        "a cooldown shed must be immediate"
    );

    // Batches owned entirely by the surviving shard: still exact.
    let reply = client.probe(&by_shard[0], false).unwrap();
    for (c, got) in by_shard[0].iter().zip(&reply.refs) {
        assert_eq!(*got, sorted(idx.lookup_refs(*c)), "surviving shard at {c}");
    }

    router.shutdown();
    for w in workers.into_iter().flatten() {
        w.shutdown();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Regression for the router's connection-thread panic: an address that
/// cannot resolve must surface as a typed `io::Error` from
/// `ResilientClient::new`, and a pre-resolved address must build a
/// client **infallibly** (`from_resolved`) whose failures against a
/// dead port are typed client errors — never a panic in either place.
#[test]
fn unresolvable_or_dead_addresses_are_typed_errors_not_panics() {
    // Name resolution failure: a typed error from the fallible ctor.
    // (`.invalid` is reserved by RFC 2606 — it can never resolve.)
    let err = ResilientClient::new("act-serve.invalid:1", RetryPolicy::default());
    assert!(err.is_err(), "an unresolvable host must be a typed error");

    // A resolved-but-dead address: the infallible ctor builds fine and
    // every request fails with a typed error, promptly.
    let dead: std::net::SocketAddr = "127.0.0.1:1".parse().unwrap();
    let mut client = ResilientClient::from_resolved(
        dead,
        RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            ..RetryPolicy::default()
        },
    );
    match client.probe(&[Coord::new(-74.0, 40.7)], false) {
        Err(ClientError::Exhausted { attempts, .. }) => assert_eq!(attempts, 2),
        other => panic!("expected a typed retry-exhausted error, got {other:?}"),
    }
}

/// The tentpole's oracle through the full sharded stack: with the
/// hot-cell cache (and a per-client quota generous enough to never
/// trip) enabled on every worker, routed probes still answer exactly
/// like the unsharded index — on the cold pass that fills the cache and
/// on the warm pass that answers from it. The fleet must actually have
/// cached (hits observed) for the warm assertion to mean anything.
#[test]
fn routed_probes_stay_exact_with_worker_caches_on() {
    let polys = fleet_polys();
    let idx = ActIndex::build(&polys, 15.0).unwrap();
    let pts = probe_grid();
    let dir = fresh_dir("cache-oracle");
    let (workers, router) = spawn_fleet(&idx, &dir, 3, || ServeConfig {
        watch: None,
        cache: Some(act_serve::CacheConfig::default()),
        client_quota_lanes: Some(1 << 20),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(router.addr()).unwrap();
    for pass in ["cold", "warm", "warm again"] {
        let reply = client.probe(&pts, false).unwrap();
        assert_eq!(reply.refs.len(), pts.len());
        for (c, got) in pts.iter().zip(&reply.refs) {
            assert_eq!(*got, sorted(idx.lookup_refs(*c)), "{pass} pass at {c}");
        }
    }
    router.shutdown();
    let (mut hits, mut quota_sheds) = (0u64, 0u64);
    for w in workers {
        let s = w.shutdown();
        hits += s.cache_hits;
        quota_sheds += s.quota_sheds;
    }
    assert!(hits > 0, "the warm passes must have answered from cache");
    assert_eq!(quota_sheds, 0, "a generous quota must never shed");
    std::fs::remove_dir_all(&dir).unwrap();
}
