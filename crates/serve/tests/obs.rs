//! End-to-end tests for the observability pipeline: per-stage
//! histograms over the wire (v3 flagged STATS), the sampled trace ring
//! and its DUMP op, the `/metrics` exposition endpoint, and the
//! router's gather/merge of per-shard scrapes.
//!
//! The fleet test asserts the tentpole invariant literally: the
//! router's merged histogram section equals a client-side
//! [`merge_stage_histograms`] over direct per-shard scrapes of the
//! same traffic.

use act_core::{write_shard_files, ActIndex, Refiner, DEFAULT_SPLIT_LEVEL};
use act_serve::protocol as proto;
use act_serve::{
    Client, ObsConfig, Router, RouterConfig, ServeConfig, Server, ServerHandle, StatsExReply,
};
use geom::{Coord, Polygon, Ring};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn square(cx: f64, cy: f64, half: f64) -> Polygon {
    Polygon::new(
        Ring::new(vec![
            Coord::new(cx - half, cy - half),
            Coord::new(cx + half, cy - half),
            Coord::new(cx + half, cy + half),
            Coord::new(cx - half, cy + half),
        ]),
        vec![],
    )
}

/// A small NYC-ish cluster plus an equator shape so 2 shards both get
/// real traffic at the default split level.
fn polys() -> Vec<Polygon> {
    let mut p: Vec<Polygon> = (0..6)
        .map(|k| square(-74.0 + 0.05 * k as f64, 40.7, 0.02))
        .collect();
    p.push(square(0.3, 0.2, 0.08));
    p
}

fn probe_points() -> Vec<Coord> {
    let mut pts = Vec::new();
    for gx in 0..64 {
        pts.push(Coord::new(-74.1 + 0.006 * gx as f64, 40.7));
    }
    for gx in 0..16 {
        pts.push(Coord::new(0.2 + 0.02 * gx as f64, 0.2));
    }
    pts.push(Coord::new(120.0, -30.0)); // far miss
    pts
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("act-obs-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn snapshot(dir: &std::path::Path, idx: &ActIndex) -> PathBuf {
    let path = dir.join("obs.snap");
    let mut f = std::fs::File::create(&path).unwrap();
    idx.save_snapshot(&mut f).unwrap();
    path
}

/// Sample-every-1 so every admitted frame is a trace event.
fn traced_obs() -> ObsConfig {
    ObsConfig {
        trace_sample_every: 1,
        ..ObsConfig::default()
    }
}

fn spawn_obs_server(path: &std::path::Path, refiner: Option<Refiner>) -> ServerHandle {
    Server::spawn(
        path,
        ServeConfig {
            refiner,
            watch: None,
            obs: Some(traced_obs()),
            ..ServeConfig::default()
        },
    )
    .unwrap()
}

/// The write and frame-total spans close *after* the reply bytes hit the
/// socket, so a scrape racing the last reply can be one record short.
/// Polls until the frame-total count reaches `frames` (frame-total is
/// the last record a frame makes, so once it lands, so has everything
/// else for that frame), then returns the settled reply.
fn settled_stats_ex(c: &mut Client, frames: u64) -> StatsExReply {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let reply = c.stats_ex().unwrap();
        let done = reply
            .histograms
            .iter()
            .find(|h| h.stage == proto::STAGE_FRAME_TOTAL)
            .is_some_and(|h| h.hist.count() >= frames);
        if done || Instant::now() >= deadline {
            return reply;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn hist(reply: &StatsExReply, stage: u8) -> &act_obs::HistogramSnapshot {
    &reply
        .histograms
        .iter()
        .find(|h| h.stage == stage)
        .unwrap_or_else(|| panic!("stage {} missing", proto::stage_name(stage)))
        .hist
}

#[test]
fn stage_histograms_trace_dump_and_metrics_end_to_end() {
    let shapes = polys();
    let idx = ActIndex::build(&shapes, 15.0).unwrap();
    let dir = fresh_dir("e2e");
    let path = snapshot(&dir, &idx);
    let server = spawn_obs_server(&path, Some(Refiner::new(&shapes)));
    let pts = probe_points();

    let mut c = Client::connect(server.addr()).unwrap();
    for _ in 0..8 {
        c.probe(&pts, false).unwrap();
    }
    c.probe(&pts, true).unwrap(); // one exact frame → refine stage

    // Every time stage saw the traffic; lane-count stages count probes.
    let frames = 9;
    let reply = settled_stats_ex(&mut c, frames);
    assert_eq!(reply.epoch, 1);
    for stage in [
        proto::STAGE_QUEUE_WAIT,
        proto::STAGE_WRITE,
        proto::STAGE_FRAME_TOTAL,
    ] {
        assert_eq!(
            hist(&reply, stage).count(),
            frames,
            "{} must record once per probe frame",
            proto::stage_name(stage)
        );
    }
    assert!(hist(&reply, proto::STAGE_WALK).count() >= 1, "≥1 batch");
    assert!(
        hist(&reply, proto::STAGE_REFINE).count() >= 1,
        "the exact frame must time refinement"
    );
    assert_eq!(
        hist(&reply, proto::STAGE_PROBE_DEPTH).count(),
        frames * pts.len() as u64,
        "one depth sample per probed lane"
    );
    assert_eq!(
        hist(&reply, proto::STAGE_BATCH_LANES).sum,
        frames * pts.len() as u64,
        "batch-lanes sum ≡ probes served"
    );
    // Stage nesting: walk ≤ frame total, by sums (same traffic).
    assert!(hist(&reply, proto::STAGE_WALK).sum <= hist(&reply, proto::STAGE_FRAME_TOTAL).sum);

    // The sampled trace ring (every=1): one admission event per frame,
    // drained as JSON lines both via the wire op and the handle.
    let dump = c.dump().unwrap();
    assert_eq!(
        dump.lines().filter(|l| l.contains("\"admission\"")).count(),
        frames as usize
    );
    assert!(dump.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    assert_eq!(server.trace_json_lines().as_deref(), Some(dump.as_str()));

    // The exposition endpoint: curl-equivalent scrape shows the counter,
    // stage, and trace metric families with real values.
    let metrics = act_obs::MetricsServer::spawn("127.0.0.1:0", server.metrics_fn()).unwrap();
    let text = act_obs::scrape(metrics.addr()).unwrap();
    for family in [
        "# TYPE act_probes_total counter",
        "# TYPE act_stage_seconds histogram",
        "# TYPE act_batch_lanes histogram",
        "# TYPE act_probe_depth histogram",
        "# TYPE act_window_high_water_lanes gauge",
        "# TYPE act_trace_events_total counter",
    ] {
        assert!(text.contains(family), "scrape missing {family:?}");
    }
    assert!(text.contains(&format!("act_probes_total {}", frames * pts.len() as u64)));
    assert!(text.contains("act_stage_seconds_count{stage=\"queue_wait\"}"));
    assert!(text.contains("le=\"+Inf\""));

    // v2-style plain STATS still answers on the same connection.
    let plain = c.stats().unwrap();
    assert_eq!(plain.counters.probes, frames * pts.len() as u64);
}

#[test]
fn obs_off_pays_nothing_on_the_wire() {
    let idx = ActIndex::build(&polys(), 15.0).unwrap();
    let dir = fresh_dir("off");
    let path = snapshot(&dir, &idx);
    let server = Server::spawn(
        &path,
        ServeConfig {
            watch: None,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let mut c = Client::connect(server.addr()).unwrap();
    c.probe(&probe_points(), false).unwrap();

    // Flagged STATS still answers (counters + empty histogram section).
    let reply = c.stats_ex().unwrap();
    assert!(reply.counters.probes > 0);
    assert!(reply.histograms.is_empty());
    // No trace ring → DUMP is a typed refusal, not a hang or a panic.
    assert!(c.dump().is_err());
    assert!(server.trace_json_lines().is_none());
    // The connection survives the refusal.
    c.probe(&probe_points(), false).unwrap();
}

#[test]
fn window_high_water_resets_per_flagged_read() {
    let idx = ActIndex::build(&polys(), 15.0).unwrap();
    let dir = fresh_dir("window");
    let path = snapshot(&dir, &idx);
    let server = spawn_obs_server(&path, None);
    let pts = probe_points();

    let mut c = Client::connect(server.addr()).unwrap();
    for _ in 0..4 {
        c.probe(&pts, false).unwrap();
    }
    let first = c.stats_ex().unwrap();
    assert!(
        first.counters.window_high_water_lanes > 0,
        "traffic since start must mark the window"
    );
    assert_eq!(
        first.counters.queue_high_water_lanes, first.counters.window_high_water_lanes,
        "with one burst the lifetime and windowed marks agree"
    );

    // Idle window: the windowed mark resets, the lifetime one does not.
    let second = c.stats_ex().unwrap();
    assert_eq!(second.counters.window_high_water_lanes, 0);
    assert_eq!(
        second.counters.queue_high_water_lanes,
        first.counters.queue_high_water_lanes
    );

    // New traffic re-marks the window.
    c.probe(&pts, false).unwrap();
    assert!(c.stats_ex().unwrap().counters.window_high_water_lanes > 0);
}

/// The fleet invariant: the router's merged STATS section must equal a
/// client-side merge of direct per-shard scrapes — histogram buckets
/// bucket-for-bucket, traffic counters field-for-field.
#[test]
fn router_merge_equals_client_side_merge_of_shard_scrapes() {
    let shapes = polys();
    let idx = ActIndex::build(&shapes, 15.0).unwrap();
    let dir = fresh_dir("fleet");
    let shard_paths = write_shard_files(&idx, &dir, DEFAULT_SPLIT_LEVEL, 2).unwrap();
    let workers: Vec<ServerHandle> = shard_paths
        .iter()
        .map(|p| {
            Server::spawn(
                p,
                ServeConfig {
                    watch: None,
                    obs: Some(traced_obs()),
                    ..ServeConfig::default()
                },
            )
            .unwrap()
        })
        .collect();
    let router = Router::spawn(
        workers.iter().map(|w| w.addr()).collect(),
        RouterConfig {
            obs: Some(traced_obs()),
            ..RouterConfig::default()
        },
    )
    .unwrap();

    let pts = probe_points();
    let mut c = Client::connect(router.addr()).unwrap();
    for _ in 0..6 {
        c.probe(&pts, false).unwrap();
    }

    // Direct per-shard scrapes first (these reset each shard's
    // *windowed* mark; histograms and counters are cumulative). Every
    // frame carries lanes for both shards, so each shard answered one
    // sub-frame per routed frame — settle on that count so the scrape
    // cannot race the last sub-reply's stage records.
    let shard_scrapes: Vec<StatsExReply> = workers
        .iter()
        .map(|w| settled_stats_ex(&mut Client::connect(w.addr()).unwrap(), 6))
        .collect();
    assert!(
        shard_scrapes
            .iter()
            .all(|s| s.counters.probes > 0 && !s.histograms.is_empty()),
        "the split level must give every shard real traffic"
    );

    // Then the router's gathered view of the same (now idle) fleet.
    let merged = c.stats_ex().unwrap();
    assert_eq!(merged.epoch, 1, "min epoch over a fresh fleet");

    let mut want_counters = proto::CounterBlock::default();
    let mut want_hists: Vec<proto::StageHistogram> = Vec::new();
    for s in &shard_scrapes {
        want_counters.merge(&s.counters);
        proto::merge_stage_histograms(&mut want_hists, &s.histograms);
    }
    assert_eq!(
        merged.histograms, want_hists,
        "router-merged histograms must equal the client-side merge"
    );
    assert_eq!(merged.counters.probes, want_counters.probes);
    assert_eq!(
        merged.counters.probes,
        6 * pts.len() as u64,
        "every routed lane answered by exactly one shard"
    );
    assert_eq!(merged.counters.batches, want_counters.batches);
    assert_eq!(merged.counters.shed, want_counters.shed);
    assert_eq!(merged.counters.bad_frames, want_counters.bad_frames);
    // accepted/answered drift by exactly the STATS frames themselves
    // (each scrape is one more accepted+answered frame per shard), so
    // the merge matches modulo one gather round.
    assert_eq!(
        merged.counters.accepted,
        want_counters.accepted + workers.len() as u64
    );

    // The router's own /metrics render: merged families plus per-shard
    // labeled breakdowns and the availability gauge.
    let metrics = act_obs::MetricsServer::spawn("127.0.0.1:0", router.metrics_fn()).unwrap();
    let text = act_obs::scrape(metrics.addr()).unwrap();
    assert!(text.contains("act_probes_total{shard=\"0\"}"));
    assert!(text.contains("act_probes_total{shard=\"1\"}"));
    assert!(text.contains("act_shard_down{shard=\"0\"} 0"));
    assert!(text.contains("act_stage_seconds_bucket"));

    // Routed DUMP: the router's ring (admissions, every=1) plus each
    // shard's ring, all parseable JSON lines.
    let dump = c.dump().unwrap();
    assert!(
        dump.lines().filter(|l| l.contains("\"admission\"")).count() >= 6,
        "router + shard admissions must appear in the routed dump"
    );
    assert!(dump.lines().all(|l| l.starts_with('{') && l.ends_with('}')));

    router.shutdown();
    for w in workers {
        w.shutdown();
    }
}
