//! Geofencing: the paper's motivating Uber-style scenario — a stream of
//! ride requests must be mapped to pricing zones in real time.
//!
//! Earlier revisions piped batches from a producer thread through a
//! bounded Mutex+Condvar channel into a worker pool; profiling showed the
//! channel, not the index, was the throughput ceiling (see ROADMAP). This
//! version is **share-nothing**: the request stream is deterministic and
//! randomly addressable (`PointGen::point_at`), so each worker owns a
//! contiguous stripe of request indices outright — no queue, no locks, no
//! shared mutable state. Workers convert each block of requests to leaf
//! cells and probe the ACT with the batched walk
//! (`join_approx_cells_batch`), which overlaps the trie's dependent loads
//! across the block instead of serializing them. Per-zone counters are
//! private per worker and merged once at the end, exactly like the
//! paper's Figure 4 driver.
//!
//! **Warm starts:** a production fleet restarts processes far more often
//! than its zone set changes, so the first run persists the built index
//! as a versioned snapshot (`act_core::snapshot`) and every later run
//! loads it back instead of re-covering the polygons — the same code
//! path a rolling restart or a new shard joining the fleet would take.
//! Point `ACT_SNAPSHOT` at a different path (or delete the default one)
//! to force a cold build.
//!
//! **Online:** the same scenario also runs split across processes, the
//! way the paper's "online join" would actually deploy — one `act-serve`
//! process owning the memory-mapped snapshot, N clients streaming ride
//! requests over TCP:
//!
//! ```text
//! cargo run --release -p act-examples --example geofencing            # offline (in-process)
//! cargo run --release -p act-examples --example geofencing -- --serve [ADDR]
//! cargo run --release -p act-examples --example geofencing -- --client [ADDR]
//! cargo run --release -p act-examples --example geofencing -- --fleet [N [ADDR]]
//! ```
//!
//! The server watches its snapshot file: drop a new one on the path
//! (write a sibling + `mv` over it) and it hot-swaps without dropping a
//! request — watch the epoch in the client's summary move.

use act_core::{coord_to_cell, ActIndex};
use datagen::PointGen;
use s2cell::CellId;
use std::time::Instant;

/// Default address for `--serve` / `--client` when none is given.
const DEFAULT_ADDR: &str = "127.0.0.1:4817";

const REQUESTS: u64 = 2_000_000;
const WORKERS: usize = 4;
const BATCH: usize = 4096;
/// Precision the zones are indexed at; a snapshot built with a different
/// ε is stale and rebuilt.
const PRECISION_M: f64 = 15.0;

/// Seed of the zone dataset (see `main`). Part of the snapshot path, so
/// changing the zone set can never silently serve a stale snapshot.
const ZONE_SEED: u64 = 42;

/// Loads the zone index from `path`, falling back to a cold build (then
/// persisting the result for the next start). Any load failure — missing
/// file, truncation, corruption, a stale precision — downgrades to a
/// rebuild; a warm start is an optimization, never a correctness risk.
/// Staleness guards: the default path fingerprints the zone set (count,
/// seed, ε), and the loaded snapshot's precision is checked before it is
/// served.
fn load_or_build(path: &str, ds: &datagen::Dataset) -> ActIndex {
    if let Ok(mut f) = std::fs::File::open(path) {
        let t = Instant::now();
        match ActIndex::load_snapshot(&mut f) {
            Ok(idx) if idx.stats().precision_m == PRECISION_M => {
                println!(
                    "warm start: loaded index from {path} in {:.3} s",
                    t.elapsed().as_secs_f64()
                );
                return idx;
            }
            Ok(idx) => println!(
                "snapshot {path} was built at ε = {} m, want {PRECISION_M} m; rebuilding",
                idx.stats().precision_m
            ),
            Err(e) => println!("snapshot {path} unusable ({e}); rebuilding"),
        }
    }
    build_and_save(path, ds)
}

/// The cold path shared by the offline and serving modes: build the zone
/// index and persist it at `path` (best-effort — a failed save only
/// costs the next start its warmth).
fn build_and_save(path: &str, ds: &datagen::Dataset) -> ActIndex {
    println!(
        "cold start: building index over {} zones...",
        ds.polygons.len()
    );
    let t = Instant::now();
    let idx = ActIndex::build(&ds.polygons, PRECISION_M).unwrap();
    println!("built in {:.3} s", t.elapsed().as_secs_f64());
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::File::create(path).map_err(act_core::SnapshotError::from) {
        Ok(mut f) => match idx.save_snapshot(&mut f) {
            Ok(n) => println!("saved snapshot: {n} bytes to {path} (next start is warm)"),
            Err(e) => println!("could not save snapshot to {path}: {e}"),
        },
        Err(e) => println!("could not save snapshot to {path}: {e}"),
    }
    idx
}

/// `--serve`: own the snapshot, answer probes over TCP, hot-swap on
/// snapshot replacement. Runs until SIGINT (Ctrl-C), then drains
/// gracefully: the self-pipe flag installed below flips, the loop calls
/// `Server::shutdown()` — stop accepting, answer every accepted frame,
/// flush, join — and the final counters are printed.
fn serve_mode(addr: &str, snap_path: &str, ds: &datagen::Dataset) {
    // Ensure a current snapshot exists at the path. A cheap mmap open
    // validates it (and its ε) without the full heap deserialization the
    // offline warm start pays — the server only probes the mapping.
    match act_core::MappedSnapshot::open(snap_path) {
        Ok(snap) if snap.stats().precision_m == PRECISION_M => {}
        Ok(snap) => {
            println!(
                "snapshot {snap_path} was built at ε = {} m, want {PRECISION_M} m; rebuilding",
                snap.stats().precision_m
            );
            drop(snap); // unmap before the file is replaced
            build_and_save(snap_path, ds);
        }
        Err(e) => {
            println!("snapshot {snap_path} unusable ({e}); rebuilding");
            build_and_save(snap_path, ds);
        }
    }
    let server = act_serve::Server::spawn(
        snap_path,
        act_serve::ServeConfig {
            addr: addr.to_string(),
            // Zone geometry ships alongside the server in this example,
            // so exact-mode refinement is on offer.
            refiner: Some(act_core::Refiner::new(&ds.polygons)),
            ..act_serve::ServeConfig::default()
        },
    )
    .expect("spawn act-serve");
    println!(
        "act-serve: {} zones on {}, watching {snap_path} for hot-swaps (Ctrl-C drains + exits)",
        ds.polygons.len(),
        server.addr()
    );
    // SIGINT → graceful drain, via the self-pipe flag: the handler only
    // sets an atomic and writes one pipe byte; this loop does the work.
    let sig = sigflag::SigFlag::install(sigflag::SIGINT).expect("install SIGINT handler");
    let mut last_report = std::time::Instant::now();
    while !sig.is_raised() {
        std::thread::sleep(std::time::Duration::from_millis(100));
        if last_report.elapsed() >= std::time::Duration::from_secs(10) {
            last_report = std::time::Instant::now();
            let s = server.stats();
            println!(
                "epoch {}: {} probes in {} requests ({} micro-batches, {} shed, {} busy)",
                s.epoch, s.probes, s.requests, s.batches, s.shed, s.busy
            );
        }
    }
    println!("act-serve: SIGINT — draining (accepted frames get answered, then sockets close)");
    // shutdown() returns the post-drain counters: frames answered
    // *during* the drain are included in the final report.
    let s = server.shutdown();
    println!(
        "act-serve: drained. epoch {}: {} probes in {} requests ({} micro-batches, {} shed, {} bad, {} busy, queue high-water {} lanes)",
        s.epoch,
        s.probes,
        s.requests,
        s.batches,
        s.shed,
        s.bad_frames,
        s.busy,
        s.queue_high_water_lanes
    );
}

/// `--fleet N`: the sharded deployment in one process — split the
/// snapshot into N per-shard files (`act_core::write_shard_files`), one
/// worker per shard, the scatter-gather router in front. Point
/// `--client` at the printed address; it cannot tell the fleet from a
/// single server. Runs until SIGINT, then drains router-first so every
/// accepted frame is answered.
fn fleet_mode(addr: &str, shards: usize, snap_path: &str, ds: &datagen::Dataset) {
    let index = load_or_build(snap_path, ds);
    let shard_dir = format!("{snap_path}.shards");
    let paths = act_core::write_shard_files(
        &index,
        std::path::Path::new(&shard_dir),
        act_core::DEFAULT_SPLIT_LEVEL,
        shards,
    )
    .expect("write shard files");
    drop(index);
    let workers: Vec<_> = paths
        .iter()
        .map(|p| {
            act_serve::Server::spawn(p, act_serve::ServeConfig::default())
                .expect("spawn shard worker")
        })
        .collect();
    let router = act_serve::Router::spawn(
        workers.iter().map(|w| w.addr()).collect(),
        act_serve::RouterConfig {
            addr: addr.to_string(),
            ..act_serve::RouterConfig::default()
        },
    )
    .expect("spawn router");
    println!(
        "act-route: {} zones across {shards} shards on {} (Ctrl-C drains + exits)",
        ds.polygons.len(),
        router.addr()
    );
    let sig = sigflag::SigFlag::install(sigflag::SIGINT).expect("install SIGINT handler");
    while !sig.is_raised() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    println!("act-route: SIGINT — draining router, then the fleet");
    router.shutdown();
    for (k, w) in workers.into_iter().enumerate() {
        let s = w.shutdown();
        println!(
            "shard {k}: {} probes in {} requests ({} shed)",
            s.probes, s.requests, s.shed
        );
    }
}

/// `--client`: stream the ride-request workload to a server and print
/// the same zone-demand summary the offline mode computes in-process.
///
/// The stream rides [`act_serve::ResilientClient`]: a `BUSY` accept
/// gate, a `LOADSHED`'s retry-after hint, a contained worker panic
/// (`INTERNAL`), or a dropped connection costs a backoff-and-retry, not
/// the run — fleet clients reconnect, they don't crash.
fn client_mode(addr: &str, num_zones: usize, bbox: geom::Rect) {
    const FRAME: usize = 2048;
    println!("streaming {REQUESTS} requests to act-serve at {addr} over {WORKERS} connections...");
    let start = Instant::now();
    let per_worker = REQUESTS.div_ceil(WORKERS as u64);
    let (demand, processed, last_epoch, retries) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS as u64)
            .map(|w| {
                scope.spawn(move || {
                    let mut client = act_serve::ResilientClient::new(
                        addr,
                        act_serve::RetryPolicy {
                            // Streams are long: shed frames should wait
                            // out the hint rather than give up early.
                            max_attempts: 8,
                            jitter_seed: 0x9E0F + w,
                            ..act_serve::RetryPolicy::default()
                        },
                    )
                    .expect("resolve act-serve address");
                    let gen = PointGen::nyc_taxi_like(bbox, 7);
                    let lo = w * per_worker;
                    let hi = ((w + 1) * per_worker).min(REQUESTS);
                    let mut local = vec![0u64; num_zones];
                    let mut coords = Vec::with_capacity(FRAME);
                    let mut epoch = 0u32;
                    let mut i = lo;
                    while i < hi {
                        coords.clear();
                        coords.extend((i..hi.min(i + FRAME as u64)).map(|k| gen.point_at(k)));
                        let reply = client.probe(&coords, false).expect("probe frame");
                        epoch = reply.epoch;
                        for refs in &reply.refs {
                            for &(id, _) in refs {
                                local[id as usize] += 1;
                            }
                        }
                        i += coords.len() as u64;
                    }
                    (local, hi.saturating_sub(lo), epoch, client.retries())
                })
            })
            .collect();
        let mut demand = vec![0u64; num_zones];
        let mut processed = 0u64;
        let mut epoch = 0u32;
        let mut retries = 0u64;
        for h in handles {
            let (local, n, e, r) = h.join().expect("client worker panicked");
            for (g, l) in demand.iter_mut().zip(&local) {
                *g += l;
            }
            processed += n;
            epoch = epoch.max(e);
            retries += r;
        }
        (demand, processed, epoch, retries)
    });
    let secs = start.elapsed().as_secs_f64();
    print_summary(
        &demand,
        processed,
        secs,
        &format!("served (epoch {last_epoch}, {retries} retried frames)"),
    );
}

fn print_summary(demand: &[u64], processed: u64, secs: f64, how: &str) {
    let mut top: Vec<(usize, u64)> = demand.iter().copied().enumerate().collect();
    top.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!(
        "\nprocessed {processed} requests in {secs:.2} s  ({:.1} M req/s, {how})",
        processed as f64 / secs / 1e6
    );
    println!("hottest zones (surge candidates):");
    for (zone, count) in top.iter().take(5) {
        println!("  zone {zone:>4}: {count} requests");
    }
    let total: u64 = demand.iter().sum();
    println!("total matches: {total} (≥ requests: boundary points may match 2 zones)");
}

fn main() {
    // Zones: the neighborhood-like dataset (289 polygons).
    let ds = datagen::neighborhoods(ZONE_SEED);
    // The default path fingerprints the zone set: a different zone
    // count, seed, or ε lands on a different file and cold-builds
    // instead of serving a stale index. ACT_SNAPSHOT overrides.
    let snap_path = std::env::var("ACT_SNAPSHOT").unwrap_or_else(|_| {
        format!(
            "target/geofencing-{}zones-seed{ZONE_SEED}-{PRECISION_M}m.snap",
            ds.polygons.len()
        )
    });

    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--serve") => {
            let addr = args.get(1).map(String::as_str).unwrap_or(DEFAULT_ADDR);
            serve_mode(addr, &snap_path, &ds);
            return;
        }
        Some("--client") => {
            let addr = args.get(1).map(String::as_str).unwrap_or(DEFAULT_ADDR);
            client_mode(addr, ds.polygons.len(), ds.bbox);
            return;
        }
        Some("--fleet") => {
            let shards = args
                .get(1)
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(4);
            let addr = args.get(2).map(String::as_str).unwrap_or(DEFAULT_ADDR);
            fleet_mode(addr, shards, &snap_path, &ds);
            return;
        }
        Some(other) => {
            eprintln!(
                "unknown mode {other}; use --serve [ADDR], --client [ADDR], --fleet [N [ADDR]], or no args"
            );
            std::process::exit(2);
        }
        None => {}
    }

    let index = load_or_build(&snap_path, &ds);
    println!(
        "index: {:.1} MB, ε = {} m",
        index.memory_bytes() as f64 / 1e6,
        index.stats().precision_m
    );

    let num_zones = ds.polygons.len();
    let bbox = ds.bbox;
    let start = Instant::now();

    // Share-nothing workers: stripe w owns requests [w*per, (w+1)*per).
    let per_worker = REQUESTS.div_ceil(WORKERS as u64);
    let (demand, processed) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS as u64)
            .map(|w| {
                let index = &index;
                scope.spawn(move || {
                    let gen = PointGen::nyc_taxi_like(bbox, 7);
                    let lo = w * per_worker;
                    let hi = ((w + 1) * per_worker).min(REQUESTS);
                    let mut local = vec![0u64; num_zones];
                    let mut cells: Vec<CellId> = Vec::with_capacity(BATCH);
                    let mut i = lo;
                    while i < hi {
                        cells.clear();
                        cells.extend(
                            (i..hi.min(i + BATCH as u64)).map(|k| coord_to_cell(gen.point_at(k))),
                        );
                        act_core::join_approx_cells_batch(
                            index,
                            &cells,
                            &mut local,
                            act_core::DEFAULT_PROBE_BATCH,
                        );
                        i += cells.len() as u64;
                    }
                    (local, hi.saturating_sub(lo))
                })
            })
            .collect();
        let mut demand = vec![0u64; num_zones];
        let mut processed = 0u64;
        for h in handles {
            let (local, n) = h.join().expect("geofencing worker panicked");
            for (g, l) in demand.iter_mut().zip(&local) {
                *g += l;
            }
            processed += n;
        }
        (demand, processed)
    });
    let secs = start.elapsed().as_secs_f64();

    print_summary(
        &demand,
        processed,
        secs,
        &format!("{WORKERS} share-nothing in-process workers"),
    );
}
