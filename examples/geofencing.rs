//! Geofencing: the paper's motivating Uber-style scenario — a stream of
//! ride requests must be mapped to pricing zones in real time.
//!
//! A producer thread emits taxi-like pickup locations into a bounded
//! crossbeam channel; a pool of consumer threads probes the shared ACT
//! index and aggregates per-zone demand under a parking_lot mutex (the
//! aggregation is intentionally coarse-grained here to keep the example
//! simple; the benchmark harness shows the share-nothing fast path).
//!
//! ```text
//! cargo run --release -p act-examples --example geofencing
//! ```

use act_core::ActIndex;
use crossbeam::channel;
use datagen::PointGen;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

const REQUESTS: u64 = 2_000_000;
const WORKERS: usize = 4;
const BATCH: usize = 4096;

fn main() {
    // Zones: the neighborhood-like dataset (289 polygons).
    let ds = datagen::neighborhoods(42);
    println!("building index over {} zones...", ds.polygons.len());
    let index = Arc::new(ActIndex::build(&ds.polygons, 15.0).unwrap());
    println!(
        "index: {:.1} MB, ε = {} m",
        index.memory_bytes() as f64 / 1e6,
        index.stats().precision_m
    );

    let (tx, rx) = channel::bounded::<Vec<geom::Coord>>(64);
    let demand = Arc::new(Mutex::new(vec![0u64; ds.polygons.len()]));
    let start = Instant::now();

    // Producer: stream ride requests in batches.
    let bbox = ds.bbox;
    let producer = std::thread::spawn(move || {
        let gen = PointGen::nyc_taxi_like(bbox, 7);
        let mut batch = Vec::with_capacity(BATCH);
        for i in 0..REQUESTS {
            batch.push(gen.point_at(i));
            if batch.len() == BATCH {
                tx.send(std::mem::replace(&mut batch, Vec::with_capacity(BATCH)))
                    .unwrap();
            }
        }
        if !batch.is_empty() {
            tx.send(batch).unwrap();
        }
        // Channel closes when tx drops.
    });

    // Consumers: probe and aggregate.
    let mut workers = Vec::new();
    for _ in 0..WORKERS {
        let rx = rx.clone();
        let index = Arc::clone(&index);
        let demand = Arc::clone(&demand);
        workers.push(std::thread::spawn(move || {
            let mut local = vec![0u64; demand.lock().len()];
            let mut processed = 0u64;
            while let Ok(batch) = rx.recv() {
                for &p in &batch {
                    for (zone, _true_hit) in index.lookup_refs(p) {
                        local[zone as usize] += 1;
                    }
                }
                processed += batch.len() as u64;
            }
            // Merge once at the end.
            let mut global = demand.lock();
            for (g, l) in global.iter_mut().zip(&local) {
                *g += l;
            }
            processed
        }));
    }

    producer.join().unwrap();
    drop(rx);
    let processed: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let secs = start.elapsed().as_secs_f64();

    let demand = demand.lock();
    let mut top: Vec<(usize, u64)> = demand.iter().copied().enumerate().collect();
    top.sort_by_key(|&(_, c)| std::cmp::Reverse(c));

    println!(
        "\nprocessed {processed} requests in {secs:.2} s  ({:.1} M req/s with {WORKERS} workers)",
        processed as f64 / secs / 1e6
    );
    println!("hottest zones (surge candidates):");
    for (zone, count) in top.iter().take(5) {
        println!("  zone {zone:>4}: {count} requests");
    }
    let total: u64 = demand.iter().sum();
    println!("total matches: {total} (≥ requests: boundary points may match 2 zones)");
}
