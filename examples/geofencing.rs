//! Geofencing: the paper's motivating Uber-style scenario — a stream of
//! ride requests must be mapped to pricing zones in real time.
//!
//! Earlier revisions piped batches from a producer thread through a
//! bounded Mutex+Condvar channel into a worker pool; profiling showed the
//! channel, not the index, was the throughput ceiling (see ROADMAP). This
//! version is **share-nothing**: the request stream is deterministic and
//! randomly addressable (`PointGen::point_at`), so each worker owns a
//! contiguous stripe of request indices outright — no queue, no locks, no
//! shared mutable state. Workers convert each block of requests to leaf
//! cells and probe the ACT with the batched walk
//! (`join_approx_cells_batch`), which overlaps the trie's dependent loads
//! across the block instead of serializing them. Per-zone counters are
//! private per worker and merged once at the end, exactly like the
//! paper's Figure 4 driver.
//!
//! **Warm starts:** a production fleet restarts processes far more often
//! than its zone set changes, so the first run persists the built index
//! as a versioned snapshot (`act_core::snapshot`) and every later run
//! loads it back instead of re-covering the polygons — the same code
//! path a rolling restart or a new shard joining the fleet would take.
//! Point `ACT_SNAPSHOT` at a different path (or delete the default one)
//! to force a cold build.
//!
//! ```text
//! cargo run --release -p act-examples --example geofencing
//! ```

use act_core::{coord_to_cell, ActIndex};
use datagen::PointGen;
use s2cell::CellId;
use std::time::Instant;

const REQUESTS: u64 = 2_000_000;
const WORKERS: usize = 4;
const BATCH: usize = 4096;
/// Precision the zones are indexed at; a snapshot built with a different
/// ε is stale and rebuilt.
const PRECISION_M: f64 = 15.0;

/// Seed of the zone dataset (see `main`). Part of the snapshot path, so
/// changing the zone set can never silently serve a stale snapshot.
const ZONE_SEED: u64 = 42;

/// Loads the zone index from `path`, falling back to a cold build (then
/// persisting the result for the next start). Any load failure — missing
/// file, truncation, corruption, a stale precision — downgrades to a
/// rebuild; a warm start is an optimization, never a correctness risk.
/// Staleness guards: the default path fingerprints the zone set (count,
/// seed, ε), and the loaded snapshot's precision is checked before it is
/// served.
fn load_or_build(path: &str, ds: &datagen::Dataset) -> ActIndex {
    if let Ok(mut f) = std::fs::File::open(path) {
        let t = Instant::now();
        match ActIndex::load_snapshot(&mut f) {
            Ok(idx) if idx.stats().precision_m == PRECISION_M => {
                println!(
                    "warm start: loaded index from {path} in {:.3} s",
                    t.elapsed().as_secs_f64()
                );
                return idx;
            }
            Ok(idx) => println!(
                "snapshot {path} was built at ε = {} m, want {PRECISION_M} m; rebuilding",
                idx.stats().precision_m
            ),
            Err(e) => println!("snapshot {path} unusable ({e}); rebuilding"),
        }
    }
    println!(
        "cold start: building index over {} zones...",
        ds.polygons.len()
    );
    let t = Instant::now();
    let idx = ActIndex::build(&ds.polygons, PRECISION_M).unwrap();
    println!("built in {:.3} s", t.elapsed().as_secs_f64());
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::File::create(path).map_err(act_core::SnapshotError::from) {
        Ok(mut f) => match idx.save_snapshot(&mut f) {
            Ok(n) => println!("saved snapshot: {n} bytes to {path} (next start is warm)"),
            Err(e) => println!("could not save snapshot to {path}: {e}"),
        },
        Err(e) => println!("could not save snapshot to {path}: {e}"),
    }
    idx
}

fn main() {
    // Zones: the neighborhood-like dataset (289 polygons).
    let ds = datagen::neighborhoods(ZONE_SEED);
    // The default path fingerprints the zone set: a different zone
    // count, seed, or ε lands on a different file and cold-builds
    // instead of serving a stale index. ACT_SNAPSHOT overrides.
    let snap_path = std::env::var("ACT_SNAPSHOT").unwrap_or_else(|_| {
        format!(
            "target/geofencing-{}zones-seed{ZONE_SEED}-{PRECISION_M}m.snap",
            ds.polygons.len()
        )
    });
    let index = load_or_build(&snap_path, &ds);
    println!(
        "index: {:.1} MB, ε = {} m",
        index.memory_bytes() as f64 / 1e6,
        index.stats().precision_m
    );

    let num_zones = ds.polygons.len();
    let bbox = ds.bbox;
    let start = Instant::now();

    // Share-nothing workers: stripe w owns requests [w*per, (w+1)*per).
    let per_worker = REQUESTS.div_ceil(WORKERS as u64);
    let (demand, processed) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS as u64)
            .map(|w| {
                let index = &index;
                scope.spawn(move || {
                    let gen = PointGen::nyc_taxi_like(bbox, 7);
                    let lo = w * per_worker;
                    let hi = ((w + 1) * per_worker).min(REQUESTS);
                    let mut local = vec![0u64; num_zones];
                    let mut cells: Vec<CellId> = Vec::with_capacity(BATCH);
                    let mut i = lo;
                    while i < hi {
                        cells.clear();
                        cells.extend(
                            (i..hi.min(i + BATCH as u64)).map(|k| coord_to_cell(gen.point_at(k))),
                        );
                        act_core::join_approx_cells_batch(
                            index,
                            &cells,
                            &mut local,
                            act_core::DEFAULT_PROBE_BATCH,
                        );
                        i += cells.len() as u64;
                    }
                    (local, hi.saturating_sub(lo))
                })
            })
            .collect();
        let mut demand = vec![0u64; num_zones];
        let mut processed = 0u64;
        for h in handles {
            let (local, n) = h.join().expect("geofencing worker panicked");
            for (g, l) in demand.iter_mut().zip(&local) {
                *g += l;
            }
            processed += n;
        }
        (demand, processed)
    });
    let secs = start.elapsed().as_secs_f64();

    let mut top: Vec<(usize, u64)> = demand.iter().copied().enumerate().collect();
    top.sort_by_key(|&(_, c)| std::cmp::Reverse(c));

    println!(
        "\nprocessed {processed} requests in {secs:.2} s  ({:.1} M req/s with {WORKERS} share-nothing workers)",
        processed as f64 / secs / 1e6
    );
    println!("hottest zones (surge candidates):");
    for (zone, count) in top.iter().take(5) {
        println!("  zone {zone:>4}: {count} requests");
    }
    let total: u64 = demand.iter().sum();
    println!("total matches: {total} (≥ requests: boundary points may match 2 zones)");
}
