//! Geofencing: the paper's motivating Uber-style scenario — a stream of
//! ride requests must be mapped to pricing zones in real time.
//!
//! Earlier revisions piped batches from a producer thread through a
//! bounded Mutex+Condvar channel into a worker pool; profiling showed the
//! channel, not the index, was the throughput ceiling (see ROADMAP). This
//! version is **share-nothing**: the request stream is deterministic and
//! randomly addressable (`PointGen::point_at`), so each worker owns a
//! contiguous stripe of request indices outright — no queue, no locks, no
//! shared mutable state. Workers convert each block of requests to leaf
//! cells and probe the ACT with the batched walk
//! (`join_approx_cells_batch`), which overlaps the trie's dependent loads
//! across the block instead of serializing them. Per-zone counters are
//! private per worker and merged once at the end, exactly like the
//! paper's Figure 4 driver.
//!
//! ```text
//! cargo run --release -p act-examples --example geofencing
//! ```

use act_core::{coord_to_cell, ActIndex};
use datagen::PointGen;
use s2cell::CellId;
use std::time::Instant;

const REQUESTS: u64 = 2_000_000;
const WORKERS: usize = 4;
const BATCH: usize = 4096;

fn main() {
    // Zones: the neighborhood-like dataset (289 polygons).
    let ds = datagen::neighborhoods(42);
    println!("building index over {} zones...", ds.polygons.len());
    let index = ActIndex::build(&ds.polygons, 15.0).unwrap();
    println!(
        "index: {:.1} MB, ε = {} m",
        index.memory_bytes() as f64 / 1e6,
        index.stats().precision_m
    );

    let num_zones = ds.polygons.len();
    let bbox = ds.bbox;
    let start = Instant::now();

    // Share-nothing workers: stripe w owns requests [w*per, (w+1)*per).
    let per_worker = REQUESTS.div_ceil(WORKERS as u64);
    let (demand, processed) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS as u64)
            .map(|w| {
                let index = &index;
                scope.spawn(move || {
                    let gen = PointGen::nyc_taxi_like(bbox, 7);
                    let lo = w * per_worker;
                    let hi = ((w + 1) * per_worker).min(REQUESTS);
                    let mut local = vec![0u64; num_zones];
                    let mut cells: Vec<CellId> = Vec::with_capacity(BATCH);
                    let mut i = lo;
                    while i < hi {
                        cells.clear();
                        cells.extend(
                            (i..hi.min(i + BATCH as u64)).map(|k| coord_to_cell(gen.point_at(k))),
                        );
                        act_core::join_approx_cells_batch(
                            index,
                            &cells,
                            &mut local,
                            act_core::DEFAULT_PROBE_BATCH,
                        );
                        i += cells.len() as u64;
                    }
                    (local, hi.saturating_sub(lo))
                })
            })
            .collect();
        let mut demand = vec![0u64; num_zones];
        let mut processed = 0u64;
        for h in handles {
            let (local, n) = h.join().expect("geofencing worker panicked");
            for (g, l) in demand.iter_mut().zip(&local) {
                *g += l;
            }
            processed += n;
        }
        (demand, processed)
    });
    let secs = start.elapsed().as_secs_f64();

    let mut top: Vec<(usize, u64)> = demand.iter().copied().enumerate().collect();
    top.sort_by_key(|&(_, c)| std::cmp::Reverse(c));

    println!(
        "\nprocessed {processed} requests in {secs:.2} s  ({:.1} M req/s with {WORKERS} share-nothing workers)",
        processed as f64 / secs / 1e6
    );
    println!("hottest zones (surge candidates):");
    for (zone, count) in top.iter().take(5) {
        println!("  zone {zone:>4}: {count} requests");
    }
    let total: u64 = demand.iter().sum();
    println!("total matches: {total} (≥ requests: boundary points may match 2 zones)");
}
