//! Reproduces the paper's **Figure 1**: the covering (boundary cells) and
//! interior covering of a single polygon, and the super covering of several
//! adjacent polygons. Renders an ASCII preview to stdout and writes SVG
//! files (`covering.svg`, `super_covering.svg`) for close inspection.
//!
//! ```text
//! cargo run --release -p act-examples --example covering_viz
//! ```

use act_core::{build_super_covering, cover_polygon, CoveringParams};
use geom::Polygon;
use s2cell::{Cell, CellId};
use std::fmt::Write as _;

fn main() {
    // A single neighborhood-like polygon.
    let ds = datagen::neighborhoods(42);
    let poly = &ds.polygons[144]; // a central cell of the 17×17 lattice
    let params = CoveringParams::new(60.0);
    let cov = cover_polygon(poly, &params).unwrap();
    println!(
        "single polygon: {} interior cells (green/'#'), {} boundary cells (blue/'+')",
        cov.num_interior(),
        cov.num_boundary()
    );
    ascii_render(poly, &cov.cells);
    svg_render("covering.svg", std::slice::from_ref(poly), &cov.cells);

    // Super covering of a 3×3 block of neighborhoods (Figure 1b).
    let block: Vec<Polygon> = [126usize, 127, 128, 143, 144, 145, 160, 161, 162]
        .iter()
        .map(|&i| ds.polygons[i].clone())
        .collect();
    let coverings: Vec<_> = block
        .iter()
        .map(|p| cover_polygon(p, &params).unwrap())
        .collect();
    let sc = build_super_covering(&coverings);
    let cells: Vec<(CellId, bool)> = sc
        .cells
        .iter()
        .map(|(c, refs)| (*c, refs.iter().all(|r| r.interior)))
        .collect();
    println!(
        "\nsuper covering of 9 neighborhoods: {} cells ({} push-down splits)",
        sc.len(),
        sc.pushdown_splits
    );
    svg_render("super_covering.svg", &block, &cells);
    println!("wrote covering.svg and super_covering.svg");
}

/// Coarse terminal ASCII rendering of a covering.
fn ascii_render(poly: &Polygon, cells: &[(CellId, bool)]) {
    let bb = poly.bbox();
    let (w, h) = (68usize, 30usize);
    let mut canvas = vec![vec![' '; w]; h];
    for &(cell, interior) in cells {
        let c = Cell::from_cellid(cell);
        let center = c.center().to_latlng();
        let x = ((center.lng_degrees() - bb.min.x) / (bb.max.x - bb.min.x) * (w as f64 - 1.0))
            .clamp(0.0, w as f64 - 1.0) as usize;
        let y = ((bb.max.y - center.lat_degrees()) / (bb.max.y - bb.min.y) * (h as f64 - 1.0))
            .clamp(0.0, h as f64 - 1.0) as usize;
        let glyph = if interior { '#' } else { '+' };
        // Interior cells win the pixel (they are bigger).
        if canvas[y][x] == ' ' || interior {
            canvas[y][x] = glyph;
        }
    }
    for row in canvas {
        let line: String = row.into_iter().collect();
        println!("{}", line.trim_end());
    }
}

/// SVG rendering: blue boundary cells, green interior cells, black polygon
/// outlines — matching the paper's color scheme.
fn svg_render(path: &str, polygons: &[Polygon], cells: &[(CellId, bool)]) {
    let mut bb = geom::Rect::EMPTY;
    for p in polygons {
        bb.merge(p.bbox());
    }
    let scale = 1200.0 / (bb.max.x - bb.min.x);
    let sx = |x: f64| (x - bb.min.x) * scale;
    let sy = |y: f64| (bb.max.y - y) * scale;
    let height = (bb.max.y - bb.min.y) * scale;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="1200" height="{height:.0}" viewBox="0 0 1200 {height:.0}">"#
    );

    // Cells beneath the outlines; interior green, boundary blue.
    for &(cell, interior) in cells {
        let c = Cell::from_cellid(cell);
        let vs = c.vertices_latlng();
        let pts: Vec<String> = vs
            .iter()
            .map(|v| format!("{:.2},{:.2}", sx(v.lng_degrees()), sy(v.lat_degrees())))
            .collect();
        let fill = if interior { "#79d279" } else { "#7db5e8" };
        let _ = writeln!(
            svg,
            r#"<polygon points="{}" fill="{}" stroke="white" stroke-width="0.3"/>"#,
            pts.join(" "),
            fill
        );
    }

    for poly in polygons {
        let pts: Vec<String> = poly
            .outer()
            .vertices()
            .iter()
            .map(|v| format!("{:.2},{:.2}", sx(v.x), sy(v.y)))
            .collect();
        let _ = writeln!(
            svg,
            r#"<polygon points="{}" fill="none" stroke="black" stroke-width="1.2"/>"#,
            pts.join(" ")
        );
    }
    let _ = writeln!(svg, "</svg>");
    std::fs::write(path, svg).expect("write svg");
}
