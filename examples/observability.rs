//! Observability: watching the serving pipeline work, stage by stage.
//!
//! Builds a small zone index, serves it with the observability pipeline
//! on (`ServeConfig::obs`), drives a burst of probe traffic, and then
//! reads the system back through all three windows:
//!
//! 1. **Stage histograms over the wire** — a v3 flagged STATS
//!    (`Client::stats_ex`) returns per-stage latency distributions
//!    (queue wait → walk → refine → write → frame total) plus the
//!    batch-width and probe-depth histograms; the example prints a
//!    p50/p90/p99/p999 table.
//! 2. **Sampled traces** — the DUMP op drains the seeded 1-in-N trace
//!    ring as JSON lines (admissions here; sheds, swaps, delta applies
//!    and quarantines in a live deployment).
//! 3. **`/metrics`** — a Prometheus text scrape from the exposition
//!    listener, the exact bytes a scraper would ingest.
//!
//! ```text
//! cargo run --release -p act-examples --example observability
//! ```
//!
//! Against a real deployment the same windows come from
//! `act-serve --metrics-addr` / `act-route --metrics-addr`, which also
//! drain the trace ring to stdout on SIGINT.

use act_core::{ActIndex, Refiner};
use act_serve::{protocol as proto, Client, ObsConfig, ServeConfig, Server};
use datagen::PointGen;
use geom::{Coord, Polygon, Rect, Ring};

const ZONES_PER_SIDE: usize = 12;
const FRAMES: usize = 400;
const LANES: usize = 64;

/// A 12×12 checkerboard of square pricing zones over an NYC-sized bbox.
fn grid_zones(x0: f64, y0: f64, span: f64, n: usize) -> Vec<Polygon> {
    let step = span / n as f64;
    let half = step * 0.42; // gaps between zones → real misses
    (0..n * n)
        .map(|k| {
            let cx = x0 + step * (0.5 + (k % n) as f64);
            let cy = y0 + step * (0.5 + (k / n) as f64);
            Polygon::new(
                Ring::new(vec![
                    Coord::new(cx - half, cy - half),
                    Coord::new(cx + half, cy - half),
                    Coord::new(cx + half, cy + half),
                    Coord::new(cx - half, cy + half),
                ]),
                vec![],
            )
        })
        .collect()
}

fn main() {
    let zones = grid_zones(-74.05, 40.60, 0.30, ZONES_PER_SIDE);
    let index = ActIndex::build(&zones, 15.0).expect("build index");
    let dir = std::env::temp_dir().join(format!("act-obs-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create dir");
    let path = dir.join("zones.snap");
    index
        .save_snapshot(&mut std::fs::File::create(&path).expect("create snapshot"))
        .expect("save snapshot");

    // Observability on: histograms + a trace ring sampling every 50th
    // admission (seeded — rerunning samples the same frames).
    let server = Server::spawn(
        &path,
        ServeConfig {
            refiner: Some(Refiner::new(&zones)),
            watch: None,
            obs: Some(ObsConfig {
                trace_sample_every: 50,
                ..ObsConfig::default()
            }),
            ..ServeConfig::default()
        },
    )
    .expect("spawn server");

    // A burst of ride-request traffic, every 10th frame in exact mode.
    let bbox = Rect::new(Coord::new(-74.05, 40.60), Coord::new(-73.75, 40.90));
    let gen = PointGen::uniform(bbox, 7);
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut hits = 0u64;
    for f in 0..FRAMES {
        let pts: Vec<Coord> = (0..LANES)
            .map(|k| gen.point_at((f * LANES + k) as u64))
            .collect();
        let reply = client.probe(&pts, f % 10 == 0).expect("probe");
        hits += reply.refs.iter().filter(|r| !r.is_empty()).count() as u64;
    }
    println!(
        "drove {FRAMES} frames x {LANES} lanes ({} probes, {hits} zone hits)\n",
        FRAMES * LANES
    );

    // Window 1: the per-stage latency table, straight off the wire.
    let stats = client.stats_ex().expect("stats_ex");
    println!("server-side pipeline stages (epoch {}):", stats.epoch);
    println!(
        "  {:<12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "stage", "count", "p50 us", "p90 us", "p99 us", "p999 us"
    );
    for h in &stats.histograms {
        let name = proto::stage_name(h.stage);
        if h.hist.count() == 0 {
            continue;
        }
        match h.stage {
            proto::STAGE_BATCH_LANES | proto::STAGE_PROBE_DEPTH => println!(
                "  {:<12} {:>9} {:>7}    {:>7}    {:>7}    {:>7}   (unitless)",
                name,
                h.hist.count(),
                h.hist.quantile(0.50),
                h.hist.quantile(0.90),
                h.hist.quantile(0.99),
                h.hist.quantile(0.999),
            ),
            _ => println!(
                "  {:<12} {:>9} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
                name,
                h.hist.count(),
                h.hist.quantile(0.50) as f64 / 1e3,
                h.hist.quantile(0.90) as f64 / 1e3,
                h.hist.quantile(0.99) as f64 / 1e3,
                h.hist.quantile(0.999) as f64 / 1e3,
            ),
        }
    }

    // Window 2: the sampled trace ring, as JSON lines via the DUMP op.
    let dump = client.dump().expect("dump");
    println!(
        "\ntrace ring: {} sampled events (1 in 50); first three:",
        dump.lines().count()
    );
    for line in dump.lines().take(3) {
        println!("  {line}");
    }

    // Window 3: the Prometheus exposition, exactly as a scraper sees it.
    let metrics =
        act_obs::MetricsServer::spawn("127.0.0.1:0", server.metrics_fn()).expect("metrics");
    let text = act_obs::scrape(metrics.addr()).expect("scrape");
    let probes_line = text
        .lines()
        .find(|l| l.starts_with("act_probes_total"))
        .expect("act_probes_total family");
    let stage_lines = text
        .lines()
        .filter(|l| l.starts_with("act_stage_seconds"))
        .count();
    println!(
        "\nGET http://{}/metrics → {} bytes; {probes_line}; {stage_lines} act_stage_seconds series",
        metrics.addr(),
        text.len()
    );

    // Sanity the example relies on: a probed point resolves the same
    // zone offline and through the server.
    let p = gen.point_at(3);
    let served = client.probe(&[p], false).expect("probe").refs[0].len();
    assert_eq!(
        index.lookup_refs(p).len(),
        served,
        "offline and served answers agree at {p}"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
