//! Quickstart: build an ACT index over a handful of zones and join a few
//! points — the 60-second tour of the public API.
//!
//! ```text
//! cargo run --release -p act-examples --example quickstart
//! ```

use act_core::{ActIndex, Probe};
use geom::{Coord, Polygon, Ring};

fn zone(name: &str, cx: f64, cy: f64, half: f64) -> (String, Polygon) {
    (
        name.to_string(),
        Polygon::new(
            Ring::new(vec![
                Coord::new(cx - half, cy - half),
                Coord::new(cx + half, cy - half),
                Coord::new(cx + half, cy + half),
                Coord::new(cx - half, cy + half),
            ]),
            vec![],
        ),
    )
}

fn main() {
    // 1. Define polygons (here: three square "zones" around Manhattan).
    let zones = [
        zone("midtown", -73.98, 40.76, 0.02),
        zone("downtown", -74.01, 40.71, 0.02),
        zone("uptown", -73.95, 40.81, 0.02),
    ];
    let polygons: Vec<Polygon> = zones.iter().map(|(_, p)| p.clone()).collect();

    // 2. Build the index with a 15 m precision guarantee: every reported
    //    match is either exact or within 15 m of the polygon.
    let index = ActIndex::build(&polygons, 15.0).expect("city-scale polygons fit one cube face");
    let st = index.stats();
    println!(
        "index built: {} cells, {} trie bytes, terminal level {}",
        st.indexed_cells, st.act_bytes, st.terminal_level
    );

    // 3. Probe points.
    let queries = [
        ("Times Square", Coord::new(-73.9855, 40.7580)),
        ("Wall Street", Coord::new(-74.0090, 40.7060)),
        ("Central Park N", Coord::new(-73.9510, 40.7970)),
        ("JFK-ish", Coord::new(-73.78, 40.64)),
    ];
    for (label, p) in queries {
        let refs = index.lookup_refs(p);
        if refs.is_empty() {
            println!("{label:>15}: no zone");
        } else {
            for (id, true_hit) in refs {
                println!(
                    "{label:>15}: {} ({})",
                    zones[id as usize].0,
                    if true_hit {
                        "true hit — exact"
                    } else {
                        "candidate — within ε"
                    }
                );
            }
        }
    }

    // 4. The raw probe API for hot paths (no allocation):
    let cell = act_core::coord_to_cell(Coord::new(-73.9855, 40.7580));
    match index.probe_cell(cell) {
        Probe::One(r) => println!("raw probe: polygon {} interior={}", r.id, r.interior),
        other => println!("raw probe: {other:?}"),
    }
}
