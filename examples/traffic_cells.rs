//! Traffic monitoring: vehicle positions joined against fine-grained street
//! cells (census-block-scale polygons), comparing the approximate join with
//! the exact filter-and-refine join.
//!
//! This is the paper's second motivating use case ("positions of vehicles
//! need to be joined with street segments to enable real-time traffic
//! control"), and it demonstrates the precision/performance trade-off
//! empirically: the approximate join's per-polygon counts deviate from the
//! exact ones only for vehicles within ε of a boundary, and the measured
//! precision violations are exactly zero.
//!
//! ```text
//! cargo run --release -p act-examples --example traffic_cells
//! ```

use self::helpers::percentile;
use act_core::{ActIndex, Refiner};
use std::time::Instant;

// Tiny local helpers (the examples crate is dependency-light on purpose).
mod helpers {
    pub fn percentile(sorted: &[f64], p: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }
}

const VEHICLES: usize = 1_000_000;

fn main() {
    // Street-segment-like small polygons: a 40×25 slice of the census tier.
    let ds = datagen::blocks_scaled(40, 25, 42);
    let precision = 4.0; // GPS accuracy is ~5 m; ε = 4 m is stricter.
    println!(
        "building ACT over {} street cells at ε = {precision} m...",
        ds.polygons.len()
    );
    let t = Instant::now();
    let index = ActIndex::build(&ds.polygons, precision).unwrap();
    println!(
        "built in {:.2} s — {:.1} MB",
        t.elapsed().as_secs_f64(),
        index.memory_bytes() as f64 / 1e6
    );

    // Vehicle positions.
    let gen = datagen::PointGen::nyc_taxi_like(ds.bbox, 99);
    let positions = gen.take_vec(VEHICLES);

    // Touch the trie once so the timed runs below measure steady-state
    // probing, not first-touch page faults on a fresh multi-hundred-MB
    // allocation.
    let mut warmup = vec![0u64; ds.polygons.len()];
    act_core::join_approx_coords(
        &index,
        &positions[..100_000.min(positions.len())],
        &mut warmup,
    );

    // Approximate join (no refinement).
    let mut approx = vec![0u64; ds.polygons.len()];
    let t = Instant::now();
    let astats = act_core::join_approx_coords(&index, &positions, &mut approx);
    let approx_secs = t.elapsed().as_secs_f64();

    // Exact join (candidates refined with point-in-polygon tests).
    let refiner = Refiner::new(&ds.polygons);
    let mut exact = vec![0u64; ds.polygons.len()];
    let t = Instant::now();
    let estats = act_core::join_exact(&index, &refiner, &positions, &mut exact);
    let exact_secs = t.elapsed().as_secs_f64();

    println!("\n{VEHICLES} vehicle positions:");
    println!(
        "  approximate: {:.2} s ({:.1} M pos/s) — {} true hits, {} candidates",
        approx_secs,
        VEHICLES as f64 / approx_secs / 1e6,
        astats.true_hits,
        astats.candidate_hits
    );
    println!(
        "  exact:       {:.2} s ({:.1} M pos/s) — {} candidates refined, {} survived",
        exact_secs,
        VEHICLES as f64 / exact_secs / 1e6,
        estats.candidate_hits,
        estats.refined_hits
    );

    // Per-cell relative count error introduced by approximation.
    let mut rel_errors: Vec<f64> = approx
        .iter()
        .zip(&exact)
        .filter(|&(_, &e)| e > 0)
        .map(|(&a, &e)| (a as f64 - e as f64).abs() / e as f64)
        .collect();
    rel_errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!("\nper-cell count deviation (approx vs exact):");
    println!("  median: {:.4}%", 100.0 * percentile(&rel_errors, 0.5));
    println!("  p99:    {:.4}%", 100.0 * percentile(&rel_errors, 0.99));
    println!("  max:    {:.4}%", 100.0 * percentile(&rel_errors, 1.0));

    // Validate the precision guarantee on every false positive.
    println!("\nvalidating the ε guarantee on all approximate matches...");
    let mut violations = 0u64;
    let mut checked = 0u64;
    for &p in positions.iter().take(200_000) {
        for (id, _) in index.lookup_refs(p) {
            checked += 1;
            if ds.polygons[id as usize].distance_meters(p) > precision {
                violations += 1;
            }
        }
    }
    println!("  {checked} matches checked, {violations} violations (must be 0)");
    assert_eq!(violations, 0, "precision guarantee violated");
}
