//! Reproduces the paper's **Figure 2**: the internal anatomy of the
//! Adaptive Cell Trie and its lookup table — node counts per depth, slot
//! occupancy, the tagged-entry mix (child / one payload / two payloads /
//! lookup-table offset), and a decoded lookup walk for one query point.
//!
//! ```text
//! cargo run --release -p act-examples --example trie_anatomy
//! ```

use act_core::{coord_to_cell, ActIndex, Probe};
use geom::Coord;

fn main() {
    let ds = datagen::neighborhoods(42);
    let index = ActIndex::build(&ds.polygons, 15.0).unwrap();
    let act = index.act();
    let st = index.stats();

    println!("ADAPTIVE CELL TRIE — structure (cf. paper Figure 2a)");
    println!("dataset: {} ({} polygons)", ds.name, ds.polygons.len());
    println!(
        "precision ε = {} m  →  terminal level {}",
        st.precision_m, st.terminal_level
    );
    println!();
    println!("indexed cells:       {:>12}", st.indexed_cells);
    println!("denormalized slots:  {:>12}", st.denormalized_slots);
    println!(
        "trie nodes:          {:>12}  (fanout 256, 2 KiB each)",
        act.num_nodes()
    );
    println!("trie memory:         {:>12} bytes", act.memory_bytes());
    println!("lookup table:        {:>12} bytes", st.lookup_table_bytes);
    println!();

    let ts = act.stats();
    println!(
        "{:<7} {:>8} {:>12} {:>10}",
        "depth", "nodes", "occupied", "fill"
    );
    for (d, (&nodes, &occ)) in ts
        .nodes_per_depth
        .iter()
        .zip(&ts.occupied_per_depth)
        .enumerate()
    {
        println!(
            "{:<7} {:>8} {:>12} {:>9.1}%  (quadtree levels {}..={})",
            d,
            nodes,
            occ,
            100.0 * occ as f64 / (nodes * 256) as f64,
            d * 4 + 1,
            d * 4 + 4
        );
    }
    let (one, two, offs) = ts.terminals;
    println!();
    println!("terminal entries: {one} single payloads, {two} double payloads, {offs} lookup-table offsets");
    println!("(the paper inlines 1–2 polygon references; ≥3 go through the lookup table)");

    // Walk one lookup and narrate it (Figure 2's dashed lookup path).
    let q = Coord::new(-73.9855, 40.7580);
    let leaf = coord_to_cell(q);
    println!();
    println!("lookup walk for {q} (leaf cell {leaf}):");
    println!(
        "  key bytes: {:?}",
        (0..7).map(|d| leaf.key_byte(d)).collect::<Vec<_>>()
    );
    match index.probe_cell(leaf) {
        Probe::Miss => println!("  → miss (sentinel)"),
        Probe::One(r) => println!(
            "  → single inlined payload: polygon {} ({})",
            r.id,
            if r.interior { "true hit" } else { "candidate" }
        ),
        Probe::Two(a, b) => println!(
            "  → two inlined payloads: polygon {} ({}) and polygon {} ({})",
            a.id,
            if a.interior { "true" } else { "cand" },
            b.id,
            if b.interior { "true" } else { "cand" }
        ),
        Probe::Table(off) => {
            let (t, c) = index.table().decode(off);
            println!("  → lookup-table offset {off}: true hits {t:?}, candidates {c:?}");
            println!("     encoded as [n_true, true..., n_cand, cand...] (Figure 2b)");
        }
    }
}
