//! Memory-constrained deployments: budgeted builds and query-adaptive
//! refinement — the operating modes sketched in the paper's introduction
//! ("Our approach is also applicable to situations with strict memory
//! constraints... Our solution is to adaptively alter the trie structure
//! based on the distribution of query points").
//!
//! ```text
//! cargo run --release -p act-examples --example memory_budget
//! ```

use act_core::{build_with_budget, AdaptiveIndex, AdaptiveParams};
use datagen::PointGen;

fn main() {
    let ds = datagen::blocks_scaled(30, 20, 42);
    let target_eps = 4.0;

    // ------------------------------------------------------------------
    // Part 1: budgeted builds — precision degrades gracefully with memory.
    // ------------------------------------------------------------------
    println!(
        "budgeted builds over {} polygons, target ε = {target_eps} m:",
        ds.polygons.len()
    );
    println!(
        "{:>12} {:>16} {:>12} {:>11}",
        "budget", "achieved ε [m]", "index size", "guaranteed"
    );
    for budget_mb in [1usize, 8, 64, 512] {
        let b = build_with_budget(&ds.polygons, target_eps, budget_mb << 20).unwrap();
        println!(
            "{:>10} MB {:>16.2} {:>9.1} MB {:>11}",
            budget_mb,
            b.achieved_precision_m,
            b.index.memory_bytes() as f64 / 1e6,
            if b.guaranteed { "yes" } else { "no → refine" },
        );
    }

    // ------------------------------------------------------------------
    // Part 2: adaptive refinement — spend memory where the queries are.
    // ------------------------------------------------------------------
    println!("\nadaptive refinement (base 60 m, target {target_eps} m):");
    let params = AdaptiveParams {
        target_precision_m: target_eps,
        base_precision_m: 60.0,
        budget_bytes: 768 << 20,
        max_refined_cells: 4_000,
    };
    let mut adaptive = AdaptiveIndex::build(&ds.polygons, params).unwrap();
    println!(
        "  base index: {:.1} MB",
        adaptive.index().memory_bytes() as f64 / 1e6
    );

    // The observed workload: skewed taxi-like traffic.
    let gen = PointGen::nyc_taxi_like(ds.bbox, 7);
    for round in 1..=3 {
        let sample: Vec<_> = gen
            .iter_range(round * 100_000, 50_000)
            .map(act_core::coord_to_cell)
            .collect();
        let report = adaptive.adapt(&sample);
        println!(
            "  round {round}: refined {:>5} cells | candidate rate {:.3}% → {:.3}% | {:.1} MB → {:.1} MB",
            report.refined_cells,
            100.0 * report.candidate_rate_before,
            100.0 * report.candidate_rate_after,
            report.bytes_before as f64 / 1e6,
            report.bytes_after as f64 / 1e6,
        );
        if report.bytes_after > params.budget_bytes {
            println!("  budget reached — stopping");
            break;
        }
    }
    println!(
        "\nhot regions now answer with fine (≤ {target_eps} m) cells and more true hits,\n\
         while cold regions keep the cheap 60 m representation."
    );
}
