//! Support library for the ACT examples (see the `[[example]]` targets:
//! `quickstart`, `geofencing`, `traffic_cells`, `covering_viz`,
//! `trie_anatomy`, `memory_budget`). Run one with:
//!
//! ```text
//! cargo run --release -p act-examples --example quickstart
//! ```

#![forbid(unsafe_code)]
